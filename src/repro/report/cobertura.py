"""Cobertura XML export of the coverage campaign.

Cobertura is the lingua franca of CI coverage surfaces (Jenkins, GitLab,
Codecov all ingest it); this exporter serializes the raw
:class:`~repro.coverage.probes.CoverageCollector` observations — not the
rounded campaign percentages — so line hit counts round-trip exactly:

* statements map to ``<line number hits>`` records (max over a line's
  statements, as in the LCOV exporter);
* decisions and switch clauses map to ``branch="true"`` lines with a
  ``condition-coverage`` attribute;
* functions map to ``<method>`` entries with their own line-rate.

Files group into packages by directory (the coverage corpus is flat, so
they land in one package), and the document carries aggregate
``line-rate`` / ``branch-rate`` plus absolute covered/valid counts.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..coverage.instrument import build_function_maps
from ..coverage.probes import CoverageCollector
from ..errors import ReportError
from ..lang.minic import ast
from .base import Reporter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import CoverageData, ReportModel

#: The DTD version the document claims (the schema Cobertura 2.x emits).
COBERTURA_VERSION = "2.1.1"


def _line_hits(collector: CoverageCollector) -> Dict[int, int]:
    """Per-line hit counts: max over the line's statements."""
    per_line: Dict[int, int] = {}
    for statement, hits in zip(collector.program.statements,
                               collector.statement_hits):
        per_line[statement.line] = max(per_line.get(statement.line, 0),
                                       hits)
    return per_line


def _branch_lines(collector: CoverageCollector
                  ) -> Dict[int, Tuple[int, int]]:
    """Per-line ``(covered, total)`` branch outcome counts."""
    program = collector.program
    per_line: Dict[int, List[int]] = {}
    for decision in program.decisions:
        outcomes = collector.decision_outcomes[decision.decision_id]
        entry = per_line.setdefault(decision.line, [0, 0])
        entry[0] += len(outcomes & {True, False})
        entry[1] += 2
    for statement in program.statements:
        if isinstance(statement, ast.SwitchCase):
            hits = collector.statement_hits[statement.statement_id]
            entry = per_line.setdefault(statement.line, [0, 0])
            entry[0] += 1 if hits > 0 else 0
            entry[1] += 1
    return {line: (covered, total)
            for line, (covered, total) in per_line.items()}


def _rate(covered: int, valid: int) -> str:
    return f"{(covered / valid) if valid else 0.0:.4f}"


def _class_element(filename: str, collector: CoverageCollector
                   ) -> Tuple[ElementTree.Element, Tuple[int, int, int, int]]:
    """One ``<class>`` per covered file; returns the element plus its
    ``(lines_covered, lines_valid, branches_covered, branches_valid)``."""
    line_hits = _line_hits(collector)
    branch_lines = _branch_lines(collector)
    lines_valid = len(line_hits)
    lines_covered = sum(1 for hits in line_hits.values() if hits > 0)
    branches_covered = sum(covered for covered, _ in branch_lines.values())
    branches_valid = sum(total for _, total in branch_lines.values())

    name = filename.rsplit("/", 1)[-1]
    if name.endswith((".c", ".cc", ".cu")):
        name = name.rsplit(".", 1)[0]
    element = ElementTree.Element("class", {
        "name": name,
        "filename": filename.replace("\\", "/"),
        "line-rate": _rate(lines_covered, lines_valid),
        "branch-rate": _rate(branches_covered, branches_valid),
        "complexity": "0",
    })

    methods = ElementTree.SubElement(element, "methods")
    functions_by_name = {function.name: function
                         for function in collector.program.functions}
    for function_map in build_function_maps(collector.program):
        function = functions_by_name[function_map.name]
        method_lines = {
            collector.program.statements[statement_id].line
            for statement_id in function_map.statement_ids}
        covered = sum(1 for line in method_lines
                      if line_hits.get(line, 0) > 0)
        method = ElementTree.SubElement(methods, "method", {
            "name": function_map.name,
            "signature": "()",
            "line-rate": _rate(covered, len(method_lines)),
            "branch-rate": "0.0",
        })
        method_lines_element = ElementTree.SubElement(method, "lines")
        ElementTree.SubElement(method_lines_element, "line", {
            "number": str(function.line),
            "hits": str(line_hits.get(function.line, 0)),
            "branch": "false",
        })

    lines_element = ElementTree.SubElement(element, "lines")
    for line in sorted(line_hits):
        attributes = {
            "number": str(line),
            "hits": str(line_hits[line]),
            "branch": "false",
        }
        if line in branch_lines:
            covered, total = branch_lines[line]
            percent = int(round(100.0 * covered / total)) if total else 0
            attributes["branch"] = "true"
            attributes["condition-coverage"] = \
                f"{percent}% ({covered}/{total})"
        ElementTree.SubElement(lines_element, "line", attributes)
    return element, (lines_covered, lines_valid,
                     branches_covered, branches_valid)


def cobertura_xml(coverage: "CoverageData", timestamp: int = 0) -> str:
    """Serialize one coverage data set as a Cobertura XML document."""
    totals = [0, 0, 0, 0]
    packages: Dict[str, List[ElementTree.Element]] = {}
    package_totals: Dict[str, List[int]] = {}
    for filename in sorted(coverage.collectors):
        collector = coverage.collectors[filename]
        element, counts = _class_element(filename, collector)
        package = (filename.replace("\\", "/").rsplit("/", 1)[0]
                   if "/" in filename.replace("\\", "/") else "yolo")
        packages.setdefault(package, []).append(element)
        entry = package_totals.setdefault(package, [0, 0, 0, 0])
        for index, value in enumerate(counts):
            entry[index] += value
            totals[index] += value

    root = ElementTree.Element("coverage", {
        "line-rate": _rate(totals[0], totals[1]),
        "branch-rate": _rate(totals[2], totals[3]),
        "lines-covered": str(totals[0]),
        "lines-valid": str(totals[1]),
        "branches-covered": str(totals[2]),
        "branches-valid": str(totals[3]),
        "complexity": "0",
        "version": f"repro-{COBERTURA_VERSION}",
        "timestamp": str(timestamp),
    })
    sources = ElementTree.SubElement(root, "sources")
    ElementTree.SubElement(sources, "source").text = "."
    packages_element = ElementTree.SubElement(root, "packages")
    for package in sorted(packages):
        entry = package_totals[package]
        package_element = ElementTree.SubElement(
            packages_element, "package", {
                "name": package,
                "line-rate": _rate(entry[0], entry[1]),
                "branch-rate": _rate(entry[2], entry[3]),
                "complexity": "0",
            })
        classes = ElementTree.SubElement(package_element, "classes")
        classes.extend(packages[package])

    body = ElementTree.tostring(root, encoding="unicode")
    return f"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{body}\n"


class CoberturaReporter(Reporter):
    """Writes :func:`cobertura_xml` for the model's coverage data."""

    format = "cobertura"
    error_label = "Cobertura XML"

    def render(self, model: "ReportModel") -> str:
        if model.coverage is None:
            raise ReportError(
                "cannot write Cobertura XML: no coverage data collected")
        return cobertura_xml(model.coverage)

    def announce(self, destination: str) -> str:
        return f"Cobertura XML written to {destination}"
