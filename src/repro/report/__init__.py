"""The reporter bridge: one data model, many output surfaces.

Findings, verdicts, coverage, and trend history used to be rendered by
ad-hoc writers scattered through the CLI.  This package separates the
*what* from the *how* (mini-coverage's Bridge pattern): a single
:class:`~repro.report.model.ReportModel` is assembled once from the
assessment result, the rules registry, coverage data, profile hotspots,
and the run ledger — and every reporter renders that model:

* :class:`~repro.report.base.JsonReporter` /
  :class:`~repro.report.base.MarkdownReporter` — the pre-bridge
  ``--json`` / ``--markdown`` outputs, byte-identical;
* :class:`~repro.report.html.HtmlReporter` — a self-contained static
  dashboard (paper Figures 3-6 as charts, per-module drilldowns with
  annotated sources, degradations, trend sparklines);
* :class:`~repro.report.sarif.SarifReporter` — SARIF 2.1.0 for
  code-review/CI ingestion, deviations as suppressions;
* :class:`~repro.report.cobertura.CoberturaReporter` — Cobertura XML
  for the coverage side.
"""

from .base import (
    JsonReporter,
    MarkdownReporter,
    Reporter,
    ReportTargets,
    configured_reporters,
)
from .cobertura import CoberturaReporter, cobertura_xml
from .html import HtmlReporter, write_dashboard
from .model import (
    CoverageData,
    ModuleRollup,
    ReportModel,
    RuleActivity,
    TopicActivity,
    TrendData,
    build_report_model,
    collect_yolo_coverage,
)
from .sarif import SarifReporter, sarif_document

__all__ = [
    "CoberturaReporter",
    "CoverageData",
    "HtmlReporter",
    "JsonReporter",
    "MarkdownReporter",
    "ModuleRollup",
    "ReportModel",
    "ReportTargets",
    "Reporter",
    "RuleActivity",
    "SarifReporter",
    "TopicActivity",
    "TrendData",
    "build_report_model",
    "cobertura_xml",
    "collect_yolo_coverage",
    "configured_reporters",
    "sarif_document",
    "write_dashboard",
]
