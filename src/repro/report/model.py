"""The report model: everything any reporter renders, assembled once.

Reporters never reach back into the pipeline; they consume a
:class:`ReportModel` built by :func:`build_report_model` from

* the :class:`~repro.core.assessment.AssessmentResult` (findings,
  verdict tables, observations, degradations, baseline comparison),
* the rules registry (per-rule / per-ISO-topic aggregation — the
  paper's findings-per-guideline-topic figure),
* the module metrics joined with per-module finding counts (the
  violation-density figure),
* optional coverage data (Figure 5/6: per-file statement / branch /
  MC-DC percentages plus raw collectors for line annotation and
  Cobertura export),
* optional profile hotspots from the run's tracer, and
* optional trend series read back from the run ledger (per-rule
  finding counts over the trailing comparable-configuration window).

Keeping the aggregation here means the HTML dashboard, SARIF and
Cobertura exporters, and the legacy JSON/Markdown writers all agree on
the numbers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional

from ..checkers.architecture import module_from_path
from ..coverage.probes import CoverageCollector
from ..coverage.report import CoverageCampaign
from ..rules import REGISTRY, Rule, RuleRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core cycle
    from ..core.assessment import AssessmentResult

#: Severity display order: most blocking first.
SEVERITY_ORDER = ("CRITICAL", "MAJOR", "MINOR", "INFO")


@dataclass(frozen=True)
class RuleActivity:
    """One registered rule's activity in this run."""

    rule: Rule
    findings: int = 0
    suppressed: int = 0
    #: New findings vs the baseline; ``None`` when no baseline was given.
    new: Optional[int] = None


@dataclass(frozen=True)
class TopicActivity:
    """Findings aggregated onto one ISO 26262-6 table/topic.

    Process rules (deviation bookkeeping, contained crashes) carry no
    table; they aggregate under ``table == "process"``.
    """

    table: str
    topic: str
    findings: int
    suppressed: int
    rules: tuple

    @property
    def label(self) -> str:
        return f"{self.table}/{self.topic}" if self.topic else self.table


@dataclass(frozen=True)
class ModuleRollup:
    """One module's metrics joined with its finding counts."""

    name: str
    loc: int
    functions: int
    cc_over_10: int
    findings: int
    suppressed: int
    files: tuple

    @property
    def density(self) -> float:
        """Findings per thousand lines — the violation-density figure."""
        if not self.loc:
            return 0.0
        return 1000.0 * self.findings / self.loc


@dataclass(frozen=True)
class TrendData:
    """Per-rule finding series over the ledger's comparable window.

    Attributes:
        run_ids: the window's run ids, oldest first.
        series: ``{rule id: [count per run, oldest first]}``.
        window_size: records read from the ledger (the look-back).
        matched_runs: records sharing the latest run's config + rules
            fingerprints — the only ones the series cover.
        config_fingerprint / rules_fingerprint: the latest run's pair,
            so a dashboard can say *which* configuration the window is.
    """

    run_ids: tuple
    series: Dict[str, List[int]]
    window_size: int
    matched_runs: int
    config_fingerprint: str = ""
    rules_fingerprint: str = ""


@dataclass
class CoverageData:
    """The coverage side of the report: campaign plus raw observations.

    The campaign carries the Figure 5 percentages (with the paper's
    uncalled-function exclusion applied); the collectors carry raw
    per-statement hit counts for line annotation and Cobertura export;
    ``sources`` maps each covered filename to its text.
    """

    campaign: CoverageCampaign
    collectors: Dict[str, CoverageCollector] = field(default_factory=dict)
    sources: Dict[str, str] = field(default_factory=dict)


@dataclass
class ReportModel:
    """The assembled, reporter-independent view of one assessment."""

    result: "AssessmentResult"
    sources: Mapping[str, str]
    rules: List[RuleActivity]
    topics: List[TopicActivity]
    modules: List[ModuleRollup]
    severity_mix: Dict[str, int]
    module_of: Callable[[str], str] = module_from_path
    coverage: Optional[CoverageData] = None
    hotspots: Dict[str, List[Dict]] = field(default_factory=dict)
    trends: Optional[TrendData] = None
    tool_version: str = ""

    # ------------------------------------------------------------------

    def findings_for(self, path: str):
        """Active findings located in ``path``, line order."""
        located = []
        for report in self.result.reports.values():
            located.extend(finding for finding in report.findings
                           if finding.filename == path)
        return sorted(located, key=lambda finding: (finding.line,
                                                    finding.rule))

    def suppressed_for(self, path: str):
        """Deviation-suppressed findings located in ``path``."""
        located = []
        for report in self.result.reports.values():
            located.extend(finding for finding in report.suppressed
                           if finding.filename == path)
        return sorted(located, key=lambda finding: (finding.line,
                                                    finding.rule))

    def module_files(self, module: str) -> List[str]:
        """The assessed source paths belonging to ``module``, sorted."""
        return sorted(path for path in self.sources
                      if self.module_of(path) == module)

    @property
    def total_findings(self) -> int:
        return sum(report.finding_count
                   for report in self.result.reports.values())


# ----------------------------------------------------------------------
# assembly


def _rule_activity(result, registry: RuleRegistry) -> List[RuleActivity]:
    findings: Dict[str, int] = {}
    suppressed: Dict[str, int] = {}
    for report in result.reports.values():
        for rule, count in report.count_by_rule().items():
            findings[rule] = findings.get(rule, 0) + count
        for finding in report.suppressed:
            suppressed[finding.rule] = suppressed.get(finding.rule, 0) + 1
    new_by_rule = (result.baseline.new_by_rule()
                   if result.baseline is not None else None)
    activity = []
    for rule in registry:
        activity.append(RuleActivity(
            rule=rule,
            findings=findings.get(rule.id, 0),
            suppressed=suppressed.get(rule.id, 0),
            new=(new_by_rule.get(rule.id, 0)
                 if new_by_rule is not None else None),
        ))
    return activity


def _topic_activity(rules: List[RuleActivity]) -> List[TopicActivity]:
    grouped: Dict[tuple, Dict[str, object]] = {}
    for activity in rules:
        rule = activity.rule
        key = (rule.table or "process", rule.topic)
        entry = grouped.setdefault(key, {"findings": 0, "suppressed": 0,
                                         "rules": []})
        entry["findings"] += activity.findings
        entry["suppressed"] += activity.suppressed
        if activity.findings or activity.suppressed:
            entry["rules"].append(rule.id)
    topics = [TopicActivity(table=table, topic=topic,
                            findings=entry["findings"],
                            suppressed=entry["suppressed"],
                            rules=tuple(entry["rules"]))
              for (table, topic), entry in grouped.items()]
    # Busiest topics first; empty ones dropped (nothing to plot).
    return sorted((topic for topic in topics
                   if topic.findings or topic.suppressed),
                  key=lambda topic: (-topic.findings, topic.label))


def _severity_mix(result) -> Dict[str, int]:
    counts = {name: 0 for name in SEVERITY_ORDER}
    for report in result.reports.values():
        for finding in report.findings:
            counts[finding.severity.name] = \
                counts.get(finding.severity.name, 0) + 1
    return counts


def _module_rollups(result, sources: Mapping[str, str],
                    module_of: Callable[[str], str]) -> List[ModuleRollup]:
    findings: Dict[str, int] = {}
    suppressed: Dict[str, int] = {}
    for report in result.reports.values():
        for finding in report.findings:
            module = module_of(finding.filename)
            findings[module] = findings.get(module, 0) + 1
        for finding in report.suppressed:
            module = module_of(finding.filename)
            suppressed[module] = suppressed.get(module, 0) + 1
    files: Dict[str, List[str]] = {}
    for path in sorted(sources):
        files.setdefault(module_of(path), []).append(path)
    rollups = []
    for metrics in result.modules:
        over = metrics.functions_over((10,))
        rollups.append(ModuleRollup(
            name=metrics.name,
            loc=metrics.loc,
            functions=metrics.function_count,
            cc_over_10=over.get(10, 0),
            findings=findings.get(metrics.name, 0),
            suppressed=suppressed.get(metrics.name, 0),
            files=tuple(files.get(metrics.name, ())),
        ))
    return rollups


def _trend_data(ledger, last: int) -> Optional[TrendData]:
    """Per-rule series over the ledger, or ``None`` when unreadable."""
    if ledger is None:
        return None
    try:
        records = ledger.tail(last)
    except OSError:
        return None
    if not records:
        return None
    from ..obs.trends import comparable_window
    window = comparable_window(records)
    rules = sorted({rule for record in window
                    for rule in record.findings_by_rule})
    series = {rule: [record.findings_by_rule.get(rule, 0)
                     for record in window]
              for rule in rules}
    latest = records[-1]
    return TrendData(
        run_ids=tuple(record.run_id for record in window),
        series=series,
        window_size=len(records),
        matched_runs=len(window),
        config_fingerprint=latest.config_fingerprint,
        rules_fingerprint=latest.rules_fingerprint,
    )


def collect_yolo_coverage(with_mcdc: bool = True,
                          seed: int = 7) -> CoverageData:
    """The Figure 5 coverage experiment, kept at full fidelity.

    Runs the real-scenario suite over every YOLO MiniC file (exactly
    what ``--experiments`` measures) and keeps the raw collectors and
    sources alongside the campaign percentages, so the dashboard can
    annotate covered sources line by line and the Cobertura exporter
    can emit true hit counts.
    """
    from ..dnn.minic_yolo import YOLO_FILES, yolo_runners
    runners = yolo_runners(seed=seed)
    campaign = CoverageCampaign(files=[
        runner.coverage(with_mcdc=with_mcdc, exclude_uncalled=True)
        for runner in runners.values()])
    return CoverageData(
        campaign=campaign,
        collectors={filename: runner.collector
                    for filename, runner in runners.items()},
        sources={filename: YOLO_FILES[filename] for filename in runners},
    )


def _tool_version() -> str:
    from .. import __version__
    return __version__


def build_report_model(result, sources: Mapping[str, str], *,
                       registry: Optional[RuleRegistry] = None,
                       module_of: Callable[[str], str] = module_from_path,
                       coverage: Optional[CoverageData] = None,
                       tracer=None,
                       ledger=None,
                       trend_last: int = 20) -> ReportModel:
    """Assemble the :class:`ReportModel` every reporter consumes.

    Args:
        result: the finished assessment.
        sources: the assessed ``{path: text}`` mapping (annotated
            sources on the drilldown pages render from it).
        registry: rule registry (defaults to the process-wide one).
        module_of: path -> module mapper; must match the pipeline's.
        coverage: optional :class:`CoverageData` for the coverage
            charts and Cobertura export.
        tracer: the run's tracer, for profile hotspots (skipped when
            absent or disabled).
        ledger: optional :class:`~repro.obs.runlog.RunLedger` to read
            trend series from; an unreadable or empty ledger simply
            yields no trends.
        trend_last: trend look-back window, in runs.
    """
    registry = registry if registry is not None else REGISTRY
    rules = _rule_activity(result, registry)
    hotspots: Dict[str, List[Dict]] = {}
    if tracer is not None and getattr(tracer, "enabled", False):
        from ..obs.profile import hotspots as profile_hotspots
        hotspots = profile_hotspots(tracer, limit=10)
    return ReportModel(
        result=result,
        sources=sources,
        rules=rules,
        topics=_topic_activity(rules),
        modules=_module_rollups(result, sources, module_of),
        severity_mix=_severity_mix(result),
        module_of=module_of,
        coverage=coverage,
        hotspots=hotspots,
        trends=_trend_data(ledger, trend_last),
        tool_version=_tool_version(),
    )
