"""ISO 26262 Part 6 model: tables, grades, compliance engine, observations."""

from .asil import TABLE_COLUMNS, TARGET_ASIL, Asil
from .compliance import (
    ComplianceEngine,
    ComplianceThresholds,
    GapSeverity,
    TableAssessment,
    TechniqueAssessment,
    Verdict,
)
from .evidence import EvidenceItem, EvidenceSet
from .grades import Grade, format_grade_row, parse_grade_row
from .observations import (
    Observation,
    generate_observations,
    tooling_observations,
)
from .sensitivity import (
    AsilGapProfile,
    asil_sensitivity,
    render_sensitivity,
)
from .report import (
    assessment_to_dict,
    observations_to_dict,
    render_observations,
    render_rationales,
    render_table,
)
from .tables import (
    ALL_TABLES,
    ARCHITECTURAL_DESIGN_TABLE,
    MODELING_CODING_TABLE,
    UNIT_DESIGN_TABLE,
    RequirementTable,
    Technique,
    get_table,
)

__all__ = [
    "AsilGapProfile",
    "asil_sensitivity",
    "render_sensitivity",
    "ALL_TABLES",
    "ARCHITECTURAL_DESIGN_TABLE",
    "Asil",
    "ComplianceEngine",
    "ComplianceThresholds",
    "EvidenceItem",
    "EvidenceSet",
    "GapSeverity",
    "Grade",
    "MODELING_CODING_TABLE",
    "Observation",
    "RequirementTable",
    "TABLE_COLUMNS",
    "TARGET_ASIL",
    "TableAssessment",
    "Technique",
    "TechniqueAssessment",
    "UNIT_DESIGN_TABLE",
    "Verdict",
    "assessment_to_dict",
    "format_grade_row",
    "generate_observations",
    "get_table",
    "observations_to_dict",
    "parse_grade_row",
    "render_observations",
    "render_rationales",
    "render_table",
    "tooling_observations",
]
