"""The ISO 26262-6 requirement tables assessed by the paper, as data.

The paper reproduces three tables from Part 6 of the standard:

* paper Table 1 = ISO 26262-6 Table 1 — modeling and coding guidelines
  (software architectural design topics, Section 3.1 of the paper);
* paper Table 2 = ISO 26262-6 Table 3 — principles of software
  architectural design (Section 3.4);
* paper Table 3 = ISO 26262-6 Table 8 — principles of software unit design
  and implementation (Section 3.5).

Each table row is a :class:`Technique` with a stable identifier, the grade
per ASIL, and the key of the analyzer whose evidence decides compliance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .asil import Asil
from .grades import Grade, parse_grade_row


@dataclass(frozen=True)
class Technique:
    """One row of an ISO 26262-6 requirement table.

    Attributes:
        key: stable machine identifier, e.g. ``"low_complexity"``.
        index: 1-based row number within the table, as printed in the paper.
        title: the row text as printed in the paper.
        grades: recommendation grade for each of ASIL A-D.
        evidence_key: name of the evidence item (produced by an analyzer)
            that decides compliance, or ``None`` for qualitative-only rows.
    """

    key: str
    index: int
    title: str
    grades: Mapping[Asil, Grade]
    evidence_key: Optional[str] = None

    def grade_at(self, asil: Asil) -> Grade:
        """The recommendation grade at ``asil`` (QM grades as no-recommendation)."""
        if asil is Asil.QM:
            return Grade.NO_RECOMMENDATION
        return self.grades[asil]


@dataclass(frozen=True)
class RequirementTable:
    """A complete ISO 26262-6 requirement table."""

    key: str
    paper_number: int
    iso_number: int
    caption: str
    techniques: Tuple[Technique, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        keys = [technique.key for technique in self.techniques]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate technique keys in table {self.key}")

    def technique(self, key: str) -> Technique:
        """Look up a row by its stable key."""
        for candidate in self.techniques:
            if candidate.key == key:
                return candidate
        raise KeyError(f"table {self.key} has no technique {key!r}")

    def highly_recommended_at(self, asil: Asil) -> List[Technique]:
        """Rows graded ``++`` at the given ASIL."""
        return [technique for technique in self.techniques
                if technique.grade_at(asil) is Grade.HIGHLY_RECOMMENDED]

    def __iter__(self):
        return iter(self.techniques)

    def __len__(self) -> int:
        return len(self.techniques)


def _technique(key: str, index: int, title: str, grades: str,
               evidence_key: Optional[str] = None) -> Technique:
    return Technique(key=key, index=index, title=title,
                     grades=parse_grade_row(grades), evidence_key=evidence_key)


#: Paper Table 1 — "Modeling/coding guidelines (ISO26262_6 Table 1)".
MODELING_CODING_TABLE = RequirementTable(
    key="modeling_coding",
    paper_number=1,
    iso_number=1,
    caption="Modeling/coding guidelines (ISO 26262-6 Table 1)",
    techniques=(
        _technique("low_complexity", 1,
                   "Enforcement of low complexity", "++ ++ ++ ++",
                   evidence_key="complexity"),
        _technique("language_subsets", 2,
                   "Use language subsets", "++ ++ ++ ++",
                   evidence_key="language_subset"),
        _technique("strong_typing", 3,
                   "Enforcement of strong typing", "++ ++ ++ ++",
                   evidence_key="strong_typing"),
        _technique("defensive_implementation", 4,
                   "Use defensive implementation techniques", "o + ++ ++",
                   evidence_key="defensive"),
        _technique("design_principles", 5,
                   "Use established design principles", "+ + + ++",
                   evidence_key="design_principles"),
        _technique("graphical_representation", 6,
                   "Use unambiguous graphical representation", "+ ++ ++ ++",
                   evidence_key=None),
        _technique("style_guides", 7,
                   "Use style guides", "+ ++ ++ ++",
                   evidence_key="style"),
        _technique("naming_conventions", 8,
                   "Use naming conventions", "++ ++ ++ ++",
                   evidence_key="naming"),
    ),
)

#: Paper Table 2 — "Architectural design (ISO26262_6 Table 3)".
ARCHITECTURAL_DESIGN_TABLE = RequirementTable(
    key="architectural_design",
    paper_number=2,
    iso_number=3,
    caption="Architectural design (ISO 26262-6 Table 3)",
    techniques=(
        _technique("hierarchical_structure", 1,
                   "Hierarchical structure of SW components", "++ ++ ++ ++",
                   evidence_key="hierarchy"),
        _technique("restricted_component_size", 2,
                   "Restricted size of software components", "++ ++ ++ ++",
                   evidence_key="component_size"),
        _technique("restricted_interface_size", 3,
                   "Restricted size of interfaces", "+ + + +",
                   evidence_key="interface_size"),
        _technique("high_cohesion", 4,
                   "High cohesion in each software component", "+ ++ ++ ++",
                   evidence_key="cohesion"),
        _technique("restricted_coupling", 5,
                   "Restricted coupling between SW components", "+ ++ ++ ++",
                   evidence_key="coupling"),
        _technique("scheduling_properties", 6,
                   "Appropriate scheduling properties", "++ ++ ++ ++",
                   evidence_key="scheduling"),
        _technique("restricted_interrupts", 7,
                   "Restricted use of interrupts", "+ + + ++",
                   evidence_key="interrupts"),
    ),
)

#: Paper Table 3 — "SW unit design & implement. (ISO26262_6 Table 8)".
UNIT_DESIGN_TABLE = RequirementTable(
    key="unit_design",
    paper_number=3,
    iso_number=8,
    caption="SW unit design & implementation (ISO 26262-6 Table 8)",
    techniques=(
        _technique("single_entry_exit", 1,
                   "One entry and one exit point in functions", "++ ++ ++ ++",
                   evidence_key="single_exit"),
        _technique("no_dynamic_objects", 2,
                   "No dynamic objects or variables, or else online test "
                   "during their creation", "+ ++ ++ ++",
                   evidence_key="dynamic_allocation"),
        _technique("variable_initialization", 3,
                   "Initialization of variables", "++ ++ ++ ++",
                   evidence_key="initialization"),
        _technique("no_name_reuse", 4,
                   "No multiple use of variable names", "+ ++ ++ ++",
                   evidence_key="name_reuse"),
        _technique("avoid_globals", 5,
                   "Avoid global variables or justify usage", "+ + ++ ++",
                   evidence_key="globals"),
        _technique("limited_pointers", 6,
                   "Limited use of pointers", "o + + ++",
                   evidence_key="pointers"),
        _technique("no_implicit_conversions", 7,
                   "No implicit type conversions", "+ ++ ++ ++",
                   evidence_key="implicit_conversions"),
        _technique("no_hidden_flow", 8,
                   "No hidden data flow or control flow", "+ ++ ++ ++",
                   evidence_key="hidden_flow"),
        _technique("no_unconditional_jumps", 9,
                   "No unconditional jumps", "++ ++ ++ ++",
                   evidence_key="unconditional_jumps"),
        _technique("no_recursion", 10,
                   "No recursions", "+ + ++ ++",
                   evidence_key="recursion"),
    ),
)

#: All three tables, keyed by their stable name.
ALL_TABLES: Dict[str, RequirementTable] = {
    table.key: table
    for table in (MODELING_CODING_TABLE, ARCHITECTURAL_DESIGN_TABLE,
                  UNIT_DESIGN_TABLE)
}


def get_table(key: str) -> RequirementTable:
    """Look up one of the three assessed tables by key."""
    try:
        return ALL_TABLES[key]
    except KeyError:
        raise KeyError(
            f"unknown table {key!r}; expected one of {sorted(ALL_TABLES)}"
        ) from None
