"""Automotive Safety Integrity Levels (ASIL) as defined by ISO 26262.

ISO 26262 defines four integrity levels, ASIL A (lowest) through ASIL D
(highest), plus the Quality Management (QM) category for components whose
failure cannot cause a safety risk.  The paper assesses the whole Apollo
pipeline at ASIL D because every module affects car motion.
"""

from __future__ import annotations

import enum
from typing import List


class Asil(enum.IntEnum):
    """An ASIL criticality level, ordered from QM (lowest) to D (highest).

    The integer ordering matches criticality, so comparisons such as
    ``Asil.C >= Asil.B`` behave as expected.
    """

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    @classmethod
    def from_string(cls, text: str) -> "Asil":
        """Parse an ASIL from text such as ``"ASIL-D"``, ``"D"`` or ``"qm"``."""
        normalized = text.strip().upper().replace("ASIL", "").strip("-_ ")
        if not normalized:
            raise ValueError(f"empty ASIL designation: {text!r}")
        try:
            return cls[normalized]
        except KeyError:
            raise ValueError(f"unknown ASIL designation: {text!r}") from None

    @property
    def is_safety_relevant(self) -> bool:
        """True for ASIL A-D; False for QM."""
        return self is not Asil.QM

    def describe(self) -> str:
        """Human-readable description used in compliance reports."""
        if self is Asil.QM:
            return "QM (quality management, no safety requirements)"
        extremes = {Asil.A: " (lowest criticality)", Asil.D: " (highest criticality)"}
        return f"ASIL-{self.name}{extremes.get(self, '')}"


#: The four safety-relevant levels, in ascending criticality, as they appear
#: as columns of the ISO 26262-6 requirement tables.
TABLE_COLUMNS: List[Asil] = [Asil.A, Asil.B, Asil.C, Asil.D]

#: The paper argues the full AD pipeline must reach ASIL D (fail-operational
#: Level-5 autonomy), so all verdicts are computed against this level.
TARGET_ASIL: Asil = Asil.D
