"""Recommendation grades used by the ISO 26262-6 requirement tables.

ISO 26262 annotates each method/technique with a per-ASIL grade:

* ``++`` — highly recommended for that ASIL;
* ``+``  — recommended;
* ``o``  — no recommendation for or against (the paper reads it as
  "not required").

The grade drives how a non-complying finding is weighted: missing a ``++``
technique at the target ASIL is a major gap, missing a ``+`` one is a minor
gap, and an ``o`` technique cannot produce a gap at all.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping

from .asil import Asil, TABLE_COLUMNS


class Grade(enum.IntEnum):
    """A per-ASIL recommendation strength, ordered by how binding it is."""

    NO_RECOMMENDATION = 0
    RECOMMENDED = 1
    HIGHLY_RECOMMENDED = 2

    @classmethod
    def from_symbol(cls, symbol: str) -> "Grade":
        """Parse the standard's notation: ``"++"``, ``"+"`` or ``"o"``."""
        try:
            return _SYMBOL_TO_GRADE[symbol.strip()]
        except KeyError:
            raise ValueError(f"unknown grade symbol: {symbol!r}") from None

    @property
    def symbol(self) -> str:
        """The standard's notation for this grade."""
        return _GRADE_TO_SYMBOL[self]

    @property
    def is_binding(self) -> bool:
        """True when skipping the technique needs justification (``+``/``++``)."""
        return self is not Grade.NO_RECOMMENDATION


_SYMBOL_TO_GRADE: Dict[str, Grade] = {
    "++": Grade.HIGHLY_RECOMMENDED,
    "+": Grade.RECOMMENDED,
    "o": Grade.NO_RECOMMENDATION,
    "0": Grade.NO_RECOMMENDATION,
}

_GRADE_TO_SYMBOL: Dict[Grade, str] = {
    Grade.HIGHLY_RECOMMENDED: "++",
    Grade.RECOMMENDED: "+",
    Grade.NO_RECOMMENDATION: "o",
}


def parse_grade_row(symbols: str) -> Dict[Asil, Grade]:
    """Parse a whitespace-separated row of grade symbols for ASIL A-D.

    ``parse_grade_row("o + ++ ++")`` yields the mapping for a technique that
    is optional at ASIL A, recommended at B and highly recommended at C/D.
    """
    parts = symbols.split()
    if len(parts) != len(TABLE_COLUMNS):
        raise ValueError(
            f"expected {len(TABLE_COLUMNS)} grade symbols (ASIL A-D), "
            f"got {len(parts)} in {symbols!r}"
        )
    return {asil: Grade.from_symbol(symbol)
            for asil, symbol in zip(TABLE_COLUMNS, parts)}


def format_grade_row(grades: Mapping[Asil, Grade]) -> str:
    """Inverse of :func:`parse_grade_row`, used by the report renderer."""
    return " ".join(grades[asil].symbol for asil in TABLE_COLUMNS)
