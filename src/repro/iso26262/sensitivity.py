"""ASIL sensitivity analysis: how the certification gap varies with ASIL.

The requirement tables grade every technique per ASIL (``o``/``+``/``++``)
— so the *same* measured evidence produces different gap profiles at
different integrity levels.  The paper targets ASIL D ("AD systems will
reach ASIL-D"); this analysis quantifies what relaxing the target would
buy, e.g. defensive implementation is not even recommended at ASIL A
(Table 1 row 4: ``o + ++ ++``), so its gap vanishes there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .asil import Asil, TABLE_COLUMNS
from .compliance import (
    ComplianceEngine,
    ComplianceThresholds,
    GapSeverity,
)
from .evidence import EvidenceSet


@dataclass(frozen=True)
class AsilGapProfile:
    """Gap counts for one target ASIL."""

    asil: Asil
    none: int
    minor: int
    major: int
    critical: int

    @property
    def binding_gaps(self) -> int:
        return self.minor + self.major + self.critical

    @property
    def weighted(self) -> int:
        """A single effort-ish score: minor=1, major=2, critical=3."""
        return self.minor + 2 * self.major + 3 * self.critical


def asil_sensitivity(evidence: EvidenceSet,
                     thresholds: ComplianceThresholds = None
                     ) -> List[AsilGapProfile]:
    """Assess the same evidence at every ASIL A-D."""
    profiles: List[AsilGapProfile] = []
    for asil in TABLE_COLUMNS:
        engine = ComplianceEngine(
            target_asil=asil,
            thresholds=thresholds or ComplianceThresholds())
        counts: Dict[GapSeverity, int] = {severity: 0
                                          for severity in GapSeverity}
        for table in engine.assess_all(evidence).values():
            for entry in table.assessments:
                counts[entry.gap] += 1
        profiles.append(AsilGapProfile(
            asil=asil,
            none=counts[GapSeverity.NONE],
            minor=counts[GapSeverity.MINOR],
            major=counts[GapSeverity.MAJOR],
            critical=counts[GapSeverity.CRITICAL],
        ))
    return profiles


def render_sensitivity(profiles: List[AsilGapProfile]) -> str:
    """Text table: ASIL vs gap-severity counts."""
    lines = [f"{'target':<10}{'no gap':>8}{'minor':>7}{'major':>7}"
             f"{'critical':>10}{'weighted':>10}",
             "-" * 52]
    for profile in profiles:
        lines.append(f"ASIL-{profile.asil.name:<5}{profile.none:>8}"
                     f"{profile.minor:>7}{profile.major:>7}"
                     f"{profile.critical:>10}{profile.weighted:>10}")
    return "\n".join(lines)
