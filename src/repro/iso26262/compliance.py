"""The compliance engine: evidence -> per-technique verdicts.

For every row of the three assessed ISO 26262-6 tables, a verdict rule
turns the gathered evidence into one of the :class:`Verdict` values, with
a rationale quoting the deciding numbers.  The gap severity combines the
verdict with the recommendation grade at the target ASIL — missing a
``++`` technique at ASIL D is a critical certification gap, missing a
``+`` one is major, and an ``o`` technique cannot gap at all.

The default thresholds encode how the paper judges Apollo; they are all
configurable so the engine is reusable for "what would it take" studies
(see the ablation benchmarks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .asil import Asil, TARGET_ASIL
from .evidence import EvidenceSet
from .grades import Grade
from .tables import ALL_TABLES, RequirementTable, Technique


class Verdict(enum.Enum):
    """Compliance verdict for one technique."""

    COMPLIANT = "compliant"
    PARTIAL = "partial"
    NON_COMPLIANT = "non-compliant"
    NOT_APPLICABLE = "not applicable"
    UNKNOWN = "unknown"


class GapSeverity(enum.IntEnum):
    """How badly a verdict blocks certification at the target ASIL."""

    NONE = 0
    MINOR = 1
    MAJOR = 2
    CRITICAL = 3


@dataclass(frozen=True)
class ComplianceThresholds:
    """Numeric cut-offs for the verdict rules."""

    max_moderate_complexity_functions: int = 0
    max_misra_violations_per_kloc: float = 0.5
    max_explicit_casts: int = 0
    min_validation_ratio: float = 0.90
    partial_validation_ratio: float = 0.50
    max_mutable_globals: int = 0
    max_style_violations_per_kloc: float = 1.0
    min_naming_conformance: float = 0.97
    min_hierarchy_depth: int = 2
    max_multi_exit_ratio: float = 0.05
    partial_multi_exit_ratio: float = 0.20
    max_dynamic_alloc_ratio: float = 0.05
    partial_dynamic_alloc_ratio: float = 0.20
    max_pointer_ratio: float = 0.10
    partial_pointer_ratio: float = 0.35
    max_recursive_functions: int = 0
    partial_recursive_functions: int = 5


@dataclass
class TechniqueAssessment:
    """Verdict for one table row."""

    technique: Technique
    verdict: Verdict
    rationale: str
    target_grade: Grade
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def gap(self) -> GapSeverity:
        if self.verdict in (Verdict.COMPLIANT, Verdict.NOT_APPLICABLE):
            return GapSeverity.NONE
        if not self.target_grade.is_binding:
            return GapSeverity.NONE
        highly = self.target_grade is Grade.HIGHLY_RECOMMENDED
        if self.verdict is Verdict.NON_COMPLIANT:
            return GapSeverity.CRITICAL if highly else GapSeverity.MAJOR
        if self.verdict is Verdict.PARTIAL:
            return GapSeverity.MAJOR if highly else GapSeverity.MINOR
        return GapSeverity.MINOR  # UNKNOWN against a binding grade


@dataclass
class TableAssessment:
    """All verdicts for one requirement table."""

    table: RequirementTable
    assessments: List[TechniqueAssessment]

    def assessment(self, technique_key: str) -> TechniqueAssessment:
        for entry in self.assessments:
            if entry.technique.key == technique_key:
                return entry
        raise KeyError(f"no assessment for {technique_key!r}")

    @property
    def worst_gap(self) -> GapSeverity:
        return max((entry.gap for entry in self.assessments),
                   default=GapSeverity.NONE)

    def count(self, verdict: Verdict) -> int:
        return sum(1 for entry in self.assessments
                   if entry.verdict is verdict)


class ComplianceEngine:
    """Applies the verdict rules to an evidence set."""

    def __init__(self, target_asil: Asil = TARGET_ASIL,
                 thresholds: ComplianceThresholds = ComplianceThresholds()
                 ) -> None:
        self.target_asil = target_asil
        self.thresholds = thresholds
        self._rules: Dict[str, Callable[[EvidenceSet], tuple]] = {
            "complexity": self._rule_complexity,
            "language_subset": self._rule_language_subset,
            "strong_typing": self._rule_strong_typing,
            "defensive": self._rule_defensive,
            "design_principles": self._rule_design_principles,
            "style": self._rule_style,
            "naming": self._rule_naming,
            "hierarchy": self._rule_hierarchy,
            "component_size": self._rule_component_size,
            "interface_size": self._rule_interface_size,
            "cohesion": self._rule_cohesion,
            "coupling": self._rule_coupling,
            "scheduling": self._rule_scheduling,
            "interrupts": self._rule_interrupts,
            "single_exit": self._rule_single_exit,
            "dynamic_allocation": self._rule_dynamic_allocation,
            "initialization": self._rule_initialization,
            "name_reuse": self._rule_name_reuse,
            "globals": self._rule_globals,
            "pointers": self._rule_pointers,
            "implicit_conversions": self._rule_implicit_conversions,
            "hidden_flow": self._rule_hidden_flow,
            "unconditional_jumps": self._rule_unconditional_jumps,
            "recursion": self._rule_recursion,
        }

    # ------------------------------------------------------------------

    def assess_all(self, evidence: EvidenceSet
                   ) -> Dict[str, TableAssessment]:
        return {key: self.assess_table(table, evidence)
                for key, table in ALL_TABLES.items()}

    def assess_table(self, table: RequirementTable,
                     evidence: EvidenceSet) -> TableAssessment:
        assessments = [self.assess_technique(technique, evidence)
                       for technique in table]
        return TableAssessment(table=table, assessments=assessments)

    def assess_technique(self, technique: Technique,
                         evidence: EvidenceSet) -> TechniqueAssessment:
        grade = technique.grade_at(self.target_asil)
        if technique.evidence_key is None:
            return TechniqueAssessment(
                technique=technique,
                verdict=Verdict.NOT_APPLICABLE,
                rationale="not applicable to C/C++ (no graphical model)",
                target_grade=grade)
        rule = self._rules.get(technique.evidence_key)
        if rule is None or not self._rule_has_evidence(
                technique.evidence_key, evidence):
            return TechniqueAssessment(
                technique=technique,
                verdict=Verdict.UNKNOWN,
                rationale=f"no evidence gathered for "
                          f"{technique.evidence_key!r}",
                target_grade=grade)
        verdict, rationale, metrics = rule(evidence)
        return TechniqueAssessment(technique=technique, verdict=verdict,
                                   rationale=rationale, target_grade=grade,
                                   metrics=metrics)

    _RULE_SOURCES = {
        "complexity": "complexity",
        "language_subset": "language_subset",
        "strong_typing": "strong_typing",
        "defensive": "defensive",
        "design_principles": "design_principles",
        "style": "style",
        "naming": "naming",
        "single_exit": "unit_design",
        "dynamic_allocation": "unit_design",
        "initialization": "unit_design",
        "name_reuse": "unit_design",
        "globals": "globals",
        "pointers": "unit_design",
        "implicit_conversions": "strong_typing",
        "hidden_flow": "unit_design",
        "unconditional_jumps": "unit_design",
        "recursion": "unit_design",
        "hierarchy": "architecture",
        "component_size": "architecture",
        "interface_size": "architecture",
        "cohesion": "architecture",
        "coupling": "architecture",
        "scheduling": "architecture",
        "interrupts": "architecture",
    }

    def _rule_has_evidence(self, key: str, evidence: EvidenceSet) -> bool:
        return evidence.has(self._RULE_SOURCES.get(key, key))

    # ------------------------------------------------------------------
    # Table 1 rules (modeling/coding guidelines)

    def _rule_complexity(self, evidence: EvidenceSet):
        item = evidence.get("complexity")
        over = item.stat("moderate_or_higher", 0.0)
        total = item.stat("functions", 0)
        metrics = {"moderate_or_higher": over, "functions": total}
        if over <= self.thresholds.max_moderate_complexity_functions:
            return (Verdict.COMPLIANT,
                    f"no functions above CC 10 (of {total:.0f})", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{over:.0f} functions exceed CC 10 "
                f"(Observation 1: high complexity)", metrics)

    def _rule_language_subset(self, evidence: EvidenceSet):
        item = evidence.get("language_subset")
        per_kloc = item.stat("violations_per_kloc", 0.0)
        gpu = item.stat("gpu_functions", 0)
        metrics = {"violations_per_kloc": per_kloc, "gpu_functions": gpu}
        if gpu > 0:
            return (Verdict.NON_COMPLIANT,
                    f"no language subset exists for the {gpu:.0f} GPU "
                    f"functions (Observation 3), and CPU code shows "
                    f"{per_kloc:.1f} MISRA violations/kLOC "
                    f"(Observation 2)", metrics)
        if per_kloc <= self.thresholds.max_misra_violations_per_kloc:
            return (Verdict.COMPLIANT,
                    f"{per_kloc:.2f} MISRA violations/kLOC within "
                    f"threshold", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{per_kloc:.1f} MISRA violations/kLOC "
                f"(Observation 2)", metrics)

    def _rule_strong_typing(self, evidence: EvidenceSet):
        item = evidence.get("strong_typing")
        casts = item.stat("explicit_casts", 0.0)
        metrics = {"explicit_casts": casts}
        if casts <= self.thresholds.max_explicit_casts:
            return (Verdict.COMPLIANT, "no explicit casts found", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{casts:.0f} explicit casts observed "
                f"(Observation 5)", metrics)

    def _rule_defensive(self, evidence: EvidenceSet):
        item = evidence.get("defensive")
        ratio = item.stat("validation_ratio", 1.0)
        metrics = {"validation_ratio": ratio}
        if ratio >= self.thresholds.min_validation_ratio:
            return (Verdict.COMPLIANT,
                    f"{100 * ratio:.0f}% of functions validate inputs",
                    metrics)
        if ratio >= self.thresholds.partial_validation_ratio:
            return (Verdict.PARTIAL,
                    f"only {100 * ratio:.0f}% of functions validate "
                    f"inputs", metrics)
        return (Verdict.NON_COMPLIANT,
                f"defensive programming not used "
                f"({100 * ratio:.0f}% validation; Observation 6)", metrics)

    def _rule_design_principles(self, evidence: EvidenceSet):
        item = evidence.get("design_principles")
        globals_count = item.stat("mutable_globals", 0.0)
        metrics = {"mutable_globals": globals_count}
        if globals_count <= self.thresholds.max_mutable_globals:
            return (Verdict.COMPLIANT, "no mutable global state", metrics)
        return (Verdict.PARTIAL,
                f"exception handling is used properly, but "
                f"{globals_count:.0f} mutable globals challenge value-"
                f"range analysis (Observation 7)", metrics)

    def _rule_style(self, evidence: EvidenceSet):
        item = evidence.get("style")
        per_kloc = item.stat("violations_per_kloc", 0.0)
        metrics = {"violations_per_kloc": per_kloc}
        if per_kloc <= self.thresholds.max_style_violations_per_kloc:
            return (Verdict.COMPLIANT,
                    f"style guide followed ({per_kloc:.2f} findings/kLOC; "
                    f"Observation 8)", metrics)
        return (Verdict.PARTIAL,
                f"{per_kloc:.1f} style findings/kLOC", metrics)

    def _rule_naming(self, evidence: EvidenceSet):
        item = evidence.get("naming")
        ratio = item.stat("conformance_ratio", 1.0)
        metrics = {"conformance_ratio": ratio}
        if ratio >= self.thresholds.min_naming_conformance:
            return (Verdict.COMPLIANT,
                    f"naming conventions followed "
                    f"({100 * ratio:.1f}%; Observation 9)", metrics)
        return (Verdict.PARTIAL,
                f"naming conformance only {100 * ratio:.1f}%", metrics)

    # ------------------------------------------------------------------
    # Table 2 rules (architectural design)

    def _rule_hierarchy(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        depth = item.stat("hierarchy_depth", 2.0)
        metrics = {"hierarchy_depth": depth}
        if depth >= self.thresholds.min_hierarchy_depth:
            return (Verdict.COMPLIANT,
                    f"component tree is {depth:.0f} levels deep", metrics)
        return (Verdict.PARTIAL,
                f"flat component structure (depth {depth:.0f})", metrics)

    def _rule_component_size(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        oversized = item.stat("oversized_components", 0.0)
        metrics = {"oversized_components": oversized}
        if oversized == 0:
            return (Verdict.COMPLIANT, "all components within size limit",
                    metrics)
        return (Verdict.NON_COMPLIANT,
                f"{oversized:.0f} components exceed the size limit "
                f"(Observation 13)", metrics)

    def _rule_interface_size(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        oversized = item.stat("oversized_interfaces", 0.0)
        metrics = {"oversized_interfaces": oversized}
        if oversized == 0:
            return (Verdict.COMPLIANT, "all interfaces within size limit",
                    metrics)
        return (Verdict.PARTIAL,
                f"{oversized:.0f} interfaces exceed the method limit "
                f"(Observation 13)", metrics)

    def _rule_cohesion(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        mean = item.stat("mean_cohesion", 1.0)
        low = item.stat("low_cohesion_modules", 0)
        metrics = {"mean_cohesion": mean, "low_cohesion_modules": low}
        if low == 0:
            return (Verdict.COMPLIANT,
                    f"mean intra-module call cohesion {mean:.2f}", metrics)
        return (Verdict.PARTIAL,
                f"{low:.0f} modules below the cohesion threshold "
                f"(mean {mean:.2f})", metrics)

    def _rule_coupling(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        fanout = item.stat("max_module_fanout", 0.0)
        metrics = {"max_module_fanout": fanout}
        if fanout <= 15:
            return (Verdict.COMPLIANT,
                    f"maximum module fan-out {fanout:.0f}", metrics)
        return (Verdict.PARTIAL,
                f"module fan-out up to {fanout:.0f}", metrics)

    def _rule_scheduling(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        sites = item.stat("scheduling_sites", 0.0)
        metrics = {"scheduling_sites": sites}
        if sites == 0:
            return (Verdict.COMPLIANT,
                    "no dynamic thread/timer creation observed", metrics)
        return (Verdict.PARTIAL,
                f"{sites:.0f} dynamic thread/timer creation sites need a "
                f"scheduling argument", metrics)

    def _rule_interrupts(self, evidence: EvidenceSet):
        item = evidence.get("architecture")
        sites = item.stat("interrupt_sites", 0.0)
        metrics = {"interrupt_sites": sites}
        if sites == 0:
            return (Verdict.COMPLIANT, "no interrupt/signal handling",
                    metrics)
        return (Verdict.PARTIAL,
                f"{sites:.0f} signal/interrupt handling sites", metrics)

    # ------------------------------------------------------------------
    # Table 3 rules (unit design & implementation)

    def _rule_single_exit(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        ratio = item.stat("multi_exit_ratio", 0.0)
        metrics = {"multi_exit_ratio": ratio}
        if ratio <= self.thresholds.max_multi_exit_ratio:
            return (Verdict.COMPLIANT,
                    f"{100 * ratio:.0f}% multi-exit functions", metrics)
        if ratio <= self.thresholds.partial_multi_exit_ratio:
            return (Verdict.PARTIAL,
                    f"{100 * ratio:.0f}% of functions have several exit "
                    f"points", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{100 * ratio:.0f}% of functions have several exit "
                f"points (Section 3.5 item 1)", metrics)

    def _rule_dynamic_allocation(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        ratio = item.stat("dynamic_alloc_ratio", 0.0)
        metrics = {"dynamic_alloc_ratio": ratio}
        if ratio <= self.thresholds.max_dynamic_alloc_ratio:
            return (Verdict.COMPLIANT,
                    f"{100 * ratio:.0f}% of functions allocate "
                    f"dynamically", metrics)
        if ratio <= self.thresholds.partial_dynamic_alloc_ratio:
            return (Verdict.PARTIAL,
                    f"{100 * ratio:.0f}% of functions allocate "
                    f"dynamically", metrics)
        return (Verdict.NON_COMPLIANT,
                f"most data structures are allocated dynamically "
                f"({100 * ratio:.0f}% of functions; Section 3.5 item 2)",
                metrics)

    def _rule_initialization(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        count = item.stat("uninitialized_declarations", 0.0)
        metrics = {"uninitialized_declarations": count}
        if count == 0:
            return (Verdict.COMPLIANT, "all locals initialized", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{count:.0f} variables identified as uninitialized "
                f"(Section 3.5 item 3)", metrics)

    def _rule_name_reuse(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        count = item.stat("shadowed_names", 0.0)
        metrics = {"shadowed_names": count}
        if count == 0:
            return (Verdict.COMPLIANT, "no shadowed variable names",
                    metrics)
        return (Verdict.PARTIAL,
                f"{count:.0f} shadowed declarations complicate name "
                f"uniqueness (Section 3.5 item 4)", metrics)

    def _rule_globals(self, evidence: EvidenceSet):
        item = evidence.get("globals")
        count = item.stat("mutable_globals", 0.0)
        metrics = {"mutable_globals": count}
        if count <= self.thresholds.max_mutable_globals:
            return (Verdict.COMPLIANT, "no mutable globals", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{count:.0f} mutable globals (Section 3.5 item 5; "
                f"justified usage may be permitted)", metrics)

    def _rule_pointers(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        ratio = item.stat("pointer_ratio", 0.0)
        metrics = {"pointer_ratio": ratio}
        if ratio <= self.thresholds.max_pointer_ratio:
            return (Verdict.COMPLIANT,
                    f"pointers used in {100 * ratio:.0f}% of functions",
                    metrics)
        if ratio <= self.thresholds.partial_pointer_ratio:
            return (Verdict.PARTIAL,
                    f"pointers used in {100 * ratio:.0f}% of functions",
                    metrics)
        return (Verdict.NON_COMPLIANT,
                f"pointers used pervasively ({100 * ratio:.0f}% of "
                f"functions; CUDA makes them indispensable, "
                f"Observation 4)", metrics)

    def _rule_implicit_conversions(self, evidence: EvidenceSet):
        item = evidence.get("strong_typing")
        risks = item.stat("implicit_narrowing_risks", 0.0)
        metrics = {"implicit_narrowing_risks": risks}
        if risks == 0:
            return (Verdict.COMPLIANT, "no implicit narrowing detected",
                    metrics)
        return (Verdict.NON_COMPLIANT,
                f"{risks:.0f} implicit narrowing conversions "
                f"(Section 3.5 item 7)", metrics)

    def _rule_hidden_flow(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        sites = item.stat("hidden_flow_sites", 0.0)
        metrics = {"hidden_flow_sites": sites}
        if sites == 0:
            return (Verdict.COMPLIANT, "no hidden data/control flow",
                    metrics)
        return (Verdict.PARTIAL,
                f"{sites:.0f} hidden-flow sites (function-like macros, "
                f"conditional compilation; Section 3.5 item 8)", metrics)

    def _rule_unconditional_jumps(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        count = item.stat("goto_functions", 0.0)
        metrics = {"goto_functions": count}
        if count == 0:
            return (Verdict.COMPLIANT, "no unconditional jumps", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{count:.0f} functions use goto (Section 3.5 item 9; "
                f"minor modifications can eliminate them)", metrics)

    def _rule_recursion(self, evidence: EvidenceSet):
        item = evidence.get("unit_design")
        count = item.stat("recursive_functions", 0.0)
        metrics = {"recursive_functions": count}
        if count <= self.thresholds.max_recursive_functions:
            return (Verdict.COMPLIANT, "no recursion", metrics)
        if count <= self.thresholds.partial_recursive_functions:
            return (Verdict.PARTIAL,
                    f"{count:.0f} recursive functions for well-known "
                    f"purposes such as processing trees (Section 3.5 "
                    f"item 10)", metrics)
        return (Verdict.NON_COMPLIANT,
                f"{count:.0f} recursive functions", metrics)
