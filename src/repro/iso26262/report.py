"""Rendering of compliance assessments: text tables and JSON structures."""

from __future__ import annotations

from typing import Dict, Iterable, List

from .asil import TABLE_COLUMNS, Asil
from .compliance import TableAssessment, TechniqueAssessment, Verdict
from .observations import Observation

_VERDICT_MARKS = {
    Verdict.COMPLIANT: "yes",
    Verdict.PARTIAL: "partial",
    Verdict.NON_COMPLIANT: "NO",
    Verdict.NOT_APPLICABLE: "n/a",
    Verdict.UNKNOWN: "?",
}


def render_table(assessment: TableAssessment,
                 target_asil: Asil = Asil.D) -> str:
    """One paper-style table: grades per ASIL plus the measured verdict."""
    table = assessment.table
    title_width = max(len(entry.technique.title)
                      for entry in assessment.assessments) + 4
    header = (f"{'#':<3}{'technique':<{title_width}}"
              + "".join(f"{asil.name:>4}" for asil in TABLE_COLUMNS)
              + f"{'verdict':>10}")
    lines = [f"Table {table.paper_number}: {table.caption} "
             f"(target {target_asil.describe()})",
             header, "-" * len(header)]
    for entry in assessment.assessments:
        technique = entry.technique
        grades = "".join(f"{technique.grades[asil].symbol:>4}"
                         for asil in TABLE_COLUMNS)
        lines.append(f"{technique.index:<3}"
                     f"{technique.title:<{title_width}}{grades}"
                     f"{_VERDICT_MARKS[entry.verdict]:>10}")
    return "\n".join(lines)


def render_rationales(assessment: TableAssessment) -> str:
    """The verdict rationales, one paragraph per technique."""
    lines: List[str] = []
    for entry in assessment.assessments:
        lines.append(f"[{entry.verdict.value}] "
                     f"{entry.technique.title}: {entry.rationale}")
    return "\n".join(lines)


def render_observations(observations: Iterable[Observation]) -> str:
    return "\n".join(observation.render()
                     for observation in sorted(observations,
                                               key=lambda o: o.number))


def assessment_to_dict(assessment: TableAssessment) -> Dict:
    """JSON-ready structure for one table assessment."""
    return {
        "table": assessment.table.key,
        "paper_number": assessment.table.paper_number,
        "caption": assessment.table.caption,
        "techniques": [_technique_to_dict(entry)
                       for entry in assessment.assessments],
        "worst_gap": assessment.worst_gap.name,
    }


def _technique_to_dict(entry: TechniqueAssessment) -> Dict:
    return {
        "key": entry.technique.key,
        "index": entry.technique.index,
        "title": entry.technique.title,
        "grades": {asil.name: entry.technique.grades[asil].symbol
                   for asil in TABLE_COLUMNS},
        "verdict": entry.verdict.value,
        "rationale": entry.rationale,
        "gap": entry.gap.name,
        "metrics": entry.metrics,
    }


def observations_to_dict(observations: Iterable[Observation]) -> List[Dict]:
    return [{
        "number": observation.number,
        "title": observation.title,
        "statement": observation.statement,
        "supported": observation.supported,
        "metrics": observation.metrics,
    } for observation in sorted(observations, key=lambda o: o.number)]
