"""The paper's fourteen observations, generated from measured evidence.

Each observation is re-derived from the assessment's numbers: the
generator states the observation, reports whether the analyzed codebase
supports it, and quotes the deciding metrics.  Running the pipeline on a
hypothetical MISRA-clean codebase would (correctly) fail to reproduce
Observations 1-7 — the observations are conclusions, not constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .evidence import EvidenceSet


@dataclass(frozen=True)
class Observation:
    """One numbered observation from the paper."""

    number: int
    title: str
    statement: str
    supported: bool
    metrics: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        flag = "SUPPORTED" if self.supported else "NOT SUPPORTED"
        return (f"Observation {self.number} [{flag}] {self.title}\n"
                f"    {self.statement}")


def generate_observations(evidence: EvidenceSet) -> List[Observation]:
    """Derive Observations 1-10, 13, 14 from static-analysis evidence.

    Observations 11 and 12 concern the tooling landscape (GPU coverage
    tools, closed-source libraries) rather than properties measurable on
    the code; :func:`tooling_observations` contributes them from the
    coverage and performance experiments.
    """
    observations: List[Observation] = []

    complexity = evidence.get("complexity")
    over = complexity.stat("moderate_or_higher", 0)
    functions = complexity.stat("functions", 0)
    over_ratio = over / functions if functions else 0.0
    observations.append(Observation(
        number=1,
        title="High cyclomatic complexity",
        statement=(f"AD frameworks present a high complexity: "
                   f"{over:.0f} of {functions:.0f} functions "
                   f"({100 * over_ratio:.1f}%) exceed CC 10."),
        supported=over_ratio > 0.02,
        metrics={"moderate_or_higher": over,
                 "over_ratio": over_ratio}))

    misra = evidence.get("language_subset")
    per_kloc = misra.stat("violations_per_kloc", 0.0)
    observations.append(Observation(
        number=2,
        title="CPU code follows no safety-related guideline",
        statement=(f"The CPU part shows {per_kloc:.1f} MISRA "
                   f"violations/kLOC; adherence is achievable with "
                   f"moderate effort."),
        supported=per_kloc > 1.0,
        metrics={"violations_per_kloc": per_kloc}))

    gpu_functions = misra.stat("gpu_functions", 0)
    observations.append(Observation(
        number=3,
        title="No language subset exists for GPU code",
        statement=(f"{gpu_functions:.0f} GPU functions exist, and no "
                   f"MISRA-like subset or checker is defined for CUDA."),
        supported=gpu_functions > 0,
        metrics={"gpu_functions": gpu_functions}))

    gpu_pointers = misra.stat("gpu_functions_with_pointers", 0)
    pointer_ratio = (gpu_pointers / gpu_functions) if gpu_functions else 0.0
    observations.append(Observation(
        number=4,
        title="CUDA intrinsically uses non-recommended features",
        statement=(f"{100 * pointer_ratio:.0f}% of GPU functions use "
                   f"pointers, and kernels rely on dynamically allocated "
                   f"device memory."),
        supported=pointer_ratio > 0.9,
        metrics={"gpu_pointer_ratio": pointer_ratio}))

    typing = evidence.get("strong_typing")
    casts = typing.stat("explicit_casts", 0.0)
    analyzed_kloc = misra.stat("analyzed_lines", 0.0) / 1000.0
    casts_per_kloc = casts / analyzed_kloc if analyzed_kloc else 0.0
    observations.append(Observation(
        number=5,
        title="Weak typing in practice",
        statement=(f"{casts:.0f} explicit castings observed "
                   f"({casts_per_kloc:.1f}/kLOC), confronting the "
                   f"strong-typing requirement."),
        supported=casts_per_kloc > 3.0,
        metrics={"explicit_casts": casts,
                 "casts_per_kloc": casts_per_kloc}))

    defensive = evidence.get("defensive")
    ratio = defensive.stat("validation_ratio", 1.0)
    observations.append(Observation(
        number=6,
        title="No defensive programming",
        statement=(f"Only {100 * ratio:.0f}% of functions validate their "
                   f"inputs; defensive techniques are not used but can be "
                   f"added with limited effort."),
        supported=ratio < 0.5,
        metrics={"validation_ratio": ratio}))

    globals_item = evidence.get("globals")
    globals_count = globals_item.stat("mutable_globals", 0.0)
    globals_per_kloc = (globals_count / analyzed_kloc
                        if analyzed_kloc else 0.0)
    observations.append(Observation(
        number=7,
        title="Global variables are used",
        statement=(f"{globals_count:.0f} mutable globals "
                   f"({globals_per_kloc:.1f}/kLOC); eliminating them or "
                   f"justifying their use requires work."),
        supported=globals_per_kloc > 1.0,
        metrics={"mutable_globals": globals_count,
                 "globals_per_kloc": globals_per_kloc}))

    style = evidence.get("style")
    style_per_kloc = style.stat("violations_per_kloc", 0.0)
    observations.append(Observation(
        number=8,
        title="Style guides are followed",
        statement=(f"Style checking finds only {style_per_kloc:.2f} "
                   f"findings/kLOC; the Google C++ style guide is "
                   f"enforced."),
        supported=style_per_kloc <= 1.0,
        metrics={"violations_per_kloc": style_per_kloc}))

    naming = evidence.get("naming")
    conformance = naming.stat("conformance_ratio", 1.0)
    observations.append(Observation(
        number=9,
        title="Naming conventions are followed",
        statement=(f"{100 * conformance:.1f}% of checked names conform "
                   f"to the coding guidelines."),
        supported=conformance >= 0.97,
        metrics={"conformance_ratio": conformance}))

    architecture = evidence.get("architecture")
    oversized = architecture.stat("oversized_components", 0.0)
    observations.append(Observation(
        number=13,
        title="Architectural design principles not met",
        statement=(f"{oversized:.0f} components exceed the restricted-"
                   f"size principle; compliance is reachable with non-"
                   f"negligible effort."),
        supported=oversized > 0,
        metrics={"oversized_components": oversized}))

    unit = evidence.get("unit_design")
    multi_exit = unit.stat("multi_exit_ratio", 0.0)
    dynamic = unit.stat("dynamic_alloc_ratio", 0.0)
    observations.append(Observation(
        number=14,
        title="Unit design principles not met",
        statement=(f"{100 * multi_exit:.0f}% multi-exit functions and "
                   f"{100 * dynamic:.0f}% dynamically allocating "
                   f"functions violate the Table 8 principles."),
        supported=multi_exit > 0.2 or dynamic > 0.2,
        metrics={"multi_exit_ratio": multi_exit,
                 "dynamic_alloc_ratio": dynamic}))

    return observations


def tooling_observations(coverage_average: float,
                         gpu_coverage_tool_exists: bool = False,
                         open_vs_closed_relative: float = 1.0
                         ) -> List[Observation]:
    """Observations 10-12, grounded in the coverage/perf experiments.

    Args:
        coverage_average: mean statement coverage (%) of the real-scenario
            campaign (Figure 5).
        gpu_coverage_tool_exists: whether a qualified GPU coverage tool is
            available (the paper: none is).
        open_vs_closed_relative: open-source library performance relative
            to closed-source (Figures 7/8); near 1.0 supports the
            open-library recommendation of Observation 12.
    """
    return [
        Observation(
            number=10,
            title="Code coverage is low with available tests",
            statement=(f"Average statement coverage of the real-scenario "
                       f"tests is {coverage_average:.0f}%; additional "
                       f"test cases are required to approach 100%."),
            supported=coverage_average < 95.0,
            metrics={"statement_coverage": coverage_average}),
        Observation(
            number=11,
            title="No qualified GPU coverage tooling",
            statement=("Coverage of GPU code is only measurable by "
                       "porting kernels to the CPU (cuda4cpu-style); no "
                       "qualified on-target tool exists."),
            supported=not gpu_coverage_tool_exists,
            metrics={}),
        Observation(
            number=12,
            title="Closed-source libraries hamper compliance assessment",
            statement=(f"The DNN stack depends on closed cuBLAS/cuDNN; "
                       f"open replacements reach "
                       f"{open_vs_closed_relative:.2f}x relative "
                       f"performance, making the open-library route "
                       f"viable."),
            supported=open_vs_closed_relative > 0.7,
            metrics={"open_vs_closed_relative": open_vs_closed_relative}),
    ]
