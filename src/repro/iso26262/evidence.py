"""Evidence: the measured facts the compliance verdicts are grounded in.

Each ISO 26262-6 table row names an ``evidence_key`` (see
:mod:`repro.iso26262.tables`); an :class:`EvidenceSet` maps those keys to
:class:`EvidenceItem` objects carrying the aggregate statistics the
checkers and metric passes produced.  Keeping verdicts separated from
measurement means every verdict in the final report can cite its numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ComplianceError


@dataclass
class EvidenceItem:
    """One named body of evidence.

    Attributes:
        key: the evidence key a table row refers to.
        stats: aggregate numbers (checker/metric statistics).
        source: human-readable origin, e.g. ``"checker:language_subset"``.
        rule_counts: per-rule finding counts for checker-backed
            evidence, so topic rationales can cite which rules fired
            (empty for metric-backed evidence).
    """

    key: str
    stats: Dict[str, float] = field(default_factory=dict)
    source: str = ""
    rule_counts: Dict[str, int] = field(default_factory=dict)

    def stat(self, name: str, default: Optional[float] = None) -> float:
        if name in self.stats:
            return self.stats[name]
        if default is not None:
            return default
        raise ComplianceError(
            f"evidence {self.key!r} lacks statistic {name!r} "
            f"(has {sorted(self.stats)})")


class EvidenceSet:
    """All evidence gathered by one assessment run."""

    def __init__(self) -> None:
        self._items: Dict[str, EvidenceItem] = {}

    def add(self, item: EvidenceItem) -> None:
        if item.key in self._items:
            raise ComplianceError(f"duplicate evidence key {item.key!r}")
        self._items[item.key] = item

    def put(self, key: str, stats: Dict[str, float],
            source: str = "",
            rule_counts: Optional[Dict[str, int]] = None) -> None:
        """Convenience: add an item from raw stats."""
        self.add(EvidenceItem(key=key, stats=dict(stats), source=source,
                              rule_counts=dict(rule_counts or {})))

    def get(self, key: str) -> EvidenceItem:
        try:
            return self._items[key]
        except KeyError:
            raise ComplianceError(
                f"no evidence for key {key!r} "
                f"(available: {sorted(self._items)})") from None

    def has(self, key: str) -> bool:
        return key in self._items

    def keys(self):
        return self._items.keys()

    def __len__(self) -> int:
        return len(self._items)
