"""Benchmarks regenerating the paper's Tables 1, 2 and 3.

Each test renders the table exactly as the paper prints it (grades per
ASIL) extended with the measured Apollo-like verdict column, asserts the
verdict pattern the paper reports, and benchmarks the compliance-engine
pass that produces it.
"""

import pytest

from repro.iso26262 import (
    ComplianceEngine,
    Verdict,
    render_rationales,
    render_table,
)


def _reassess(full_assessment, table_key):
    engine = ComplianceEngine()
    return engine.assess_table(
        full_assessment.tables[table_key].table, full_assessment.evidence)


class TestTable1:
    def test_table1(self, benchmark, full_assessment):
        assessment = benchmark.pedantic(
            _reassess, args=(full_assessment, "modeling_coding"),
            rounds=3, iterations=1)
        print("\n" + render_table(assessment))
        print(render_rationales(assessment))

        verdicts = {entry.technique.key: entry.verdict
                    for entry in assessment.assessments}
        # The paper's Table 1 story: rows 1-4 violated, 5 partially
        # (globals), 6 not applicable, 7-8 followed.
        assert verdicts["low_complexity"] is Verdict.NON_COMPLIANT
        assert verdicts["language_subsets"] is Verdict.NON_COMPLIANT
        assert verdicts["strong_typing"] is Verdict.NON_COMPLIANT
        assert verdicts["defensive_implementation"] is Verdict.NON_COMPLIANT
        assert verdicts["design_principles"] is Verdict.PARTIAL
        assert verdicts["graphical_representation"] is Verdict.NOT_APPLICABLE
        assert verdicts["style_guides"] is Verdict.COMPLIANT
        assert verdicts["naming_conventions"] is Verdict.COMPLIANT

    def test_table1_grades_match_paper(self, full_assessment):
        table = full_assessment.tables["modeling_coding"].table
        from repro.iso26262 import format_grade_row
        expected = {
            "low_complexity": "++ ++ ++ ++",
            "language_subsets": "++ ++ ++ ++",
            "strong_typing": "++ ++ ++ ++",
            "defensive_implementation": "o + ++ ++",
            "design_principles": "+ + + ++",
            "graphical_representation": "+ ++ ++ ++",
            "style_guides": "+ ++ ++ ++",
            "naming_conventions": "++ ++ ++ ++",
        }
        for key, grades in expected.items():
            assert format_grade_row(table.technique(key).grades) == grades


class TestTable2:
    def test_table2(self, benchmark, full_assessment):
        assessment = benchmark.pedantic(
            _reassess, args=(full_assessment, "architectural_design"),
            rounds=3, iterations=1)
        print("\n" + render_table(assessment))
        print(render_rationales(assessment))

        verdicts = {entry.technique.key: entry.verdict
                    for entry in assessment.assessments}
        # Observation 13: size restrictions violated (modules 5k-60k LOC).
        assert verdicts["restricted_component_size"] is Verdict.NON_COMPLIANT
        assert verdicts["hierarchical_structure"] is Verdict.COMPLIANT

    def test_table2_grades_match_paper(self, full_assessment):
        from repro.iso26262 import format_grade_row
        table = full_assessment.tables["architectural_design"].table
        assert format_grade_row(
            table.technique("restricted_interface_size").grades) \
            == "+ + + +"
        assert format_grade_row(
            table.technique("restricted_interrupts").grades) == "+ + + ++"


class TestTable3:
    def test_table3(self, benchmark, full_assessment):
        assessment = benchmark.pedantic(
            _reassess, args=(full_assessment, "unit_design"),
            rounds=3, iterations=1)
        print("\n" + render_table(assessment))
        print(render_rationales(assessment))

        verdicts = {entry.technique.key: entry.verdict
                    for entry in assessment.assessments}
        # Section 3.5: items 1-3, 5, 6, 9 clearly violated; 10 is a
        # justified-partial (a few tree-processing recursions).
        assert verdicts["single_entry_exit"] is Verdict.NON_COMPLIANT
        assert verdicts["no_dynamic_objects"] is Verdict.NON_COMPLIANT
        assert verdicts["variable_initialization"] is Verdict.NON_COMPLIANT
        assert verdicts["avoid_globals"] is Verdict.NON_COMPLIANT
        assert verdicts["limited_pointers"] is Verdict.NON_COMPLIANT
        assert verdicts["no_unconditional_jumps"] is Verdict.NON_COMPLIANT
        assert verdicts["no_recursion"] is Verdict.PARTIAL

    def test_table3_grades_match_paper(self, full_assessment):
        from repro.iso26262 import format_grade_row
        table = full_assessment.tables["unit_design"].table
        assert format_grade_row(
            table.technique("limited_pointers").grades) == "o + + ++"
        assert format_grade_row(
            table.technique("no_dynamic_objects").grades) == "+ ++ ++ ++"
