"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Masking vs unique-cause MC/DC: unique-cause is never easier, and the
   two genuinely diverge on short-circuit-heavy code.
2. Flat vs shape-dependent performance model: a flat-efficiency model
   cannot reproduce Figure 8's per-shape scatter.
3. Fuzzy token-stream CC vs strict MiniC-AST CC: they agree on the shared
   language subset, justifying the two-layer language design.
"""

import pytest

from repro.coverage import (
    CoverageCollector,
    measure_mcdc_coverage,
)
from repro.lang.minic import Interpreter, parse_program


class TestMcdcVariantAblation:
    SOURCE = """
    int fused(int a, int b, int c, int d) {
      if ((a > 0 && b > 0) || (c > 0 && d > 0)) {
        return 1;
      }
      return 0;
    }
    """

    def _collect(self, vectors):
        program = parse_program(self.SOURCE)
        collector = CoverageCollector(program)
        interpreter = Interpreter(program, tracer=collector)
        for vector in vectors:
            interpreter.run("fused", list(vector))
        return collector

    def test_masking_vs_unique_cause(self, benchmark):
        # Vectors chosen so masking demonstrates more conditions than
        # unique-cause can (short-circuited positions differ).
        vectors = [(1, 1, 0, 0), (0, 1, 1, 1), (0, 1, 1, 0),
                   (1, 0, 0, 1), (0, 0, 0, 0)]
        collector = self._collect(vectors)

        masking = benchmark.pedantic(
            lambda: measure_mcdc_coverage(collector, "masking"),
            rounds=10, iterations=1)
        unique = measure_mcdc_coverage(collector, "unique-cause")
        print(f"\nMC/DC ablation: masking {masking.covered}/"
              f"{masking.total}, unique-cause {unique.covered}/"
              f"{unique.total}")
        assert unique.covered <= masking.covered
        assert masking.covered > unique.covered  # they genuinely diverge

    def test_exhaustive_vectors_saturate_both(self):
        vectors = [(a, b, c, d) for a in (0, 1) for b in (0, 1)
                   for c in (0, 1) for d in (0, 1)]
        collector = self._collect(vectors)
        assert measure_mcdc_coverage(collector, "masking").percent == 100.0


class TestFlatPerfModelAblation:
    def test_flat_model_has_no_shape_scatter(self):
        """Replace the shape-dependent efficiency with a constant: every
        relative bar collapses to the same value, unlike Figure 8."""
        from repro.dnn.layers import GemmShape
        from repro.perf import CuBlasModel, CutlassModel, GEMM_WORKLOADS
        from repro.perf.model import predict_time

        def flat_relative(shape: GemmShape) -> float:
            closed = predict_time(CuBlasModel().device, shape.flops,
                                  shape.bytes_moved, 0.84)
            open_source = predict_time(CutlassModel().device, shape.flops,
                                       shape.bytes_moved, 0.80)
            return closed / open_source

        flat = [flat_relative(workload.shape)
                for workload in GEMM_WORKLOADS]
        real = [CuBlasModel().gemm_time(workload.shape)
                / CutlassModel().gemm_time(workload.shape)
                for workload in GEMM_WORKLOADS]
        flat_spread = max(flat) - min(flat)
        real_spread = max(real) - min(real)
        print(f"\nperf-model ablation: flat spread {flat_spread:.4f}, "
              f"shape-dependent spread {real_spread:.4f}")
        # The flat model's tiny residual spread comes only from the
        # roofline's memory/compute crossover; the real model's shape-
        # dependent efficiencies dominate it by an order of magnitude.
        assert flat_spread < 0.02
        assert real_spread > 0.05
        assert real_spread > 5 * flat_spread

    def test_occupancy_term_needed_for_small_shapes(self):
        """Without the occupancy ramp, tiny GEMMs would hit peak — which
        contradicts every published benchmark."""
        from repro.dnn.layers import GemmShape
        from repro.perf import CuBlasModel
        small = GemmShape(m=32, n=32, k=32)
        large = GemmShape(m=4096, n=4096, k=4096)
        model = CuBlasModel()
        small_eff = (small.flops / model.gemm_time(small)
                     / model.device.peak_flops)
        large_eff = (large.flops / model.gemm_time(large)
                     / model.device.peak_flops)
        assert small_eff < 0.2 < large_eff


class TestDualLanguageLayerAblation:
    CASES = [
        "int f(int x) { return x; }",
        "int f(int x) { if (x > 0) { return 1; } return 0; }",
        "int f(int x) { if (x > 0 && x < 9) { return 1; } return 0; }",
        """int f(int x) {
          int s = 0;
          for (int i = 0; i < x; i++) {
            while (s < 100) {
              s += i;
              break;
            }
          }
          return s;
        }""",
        """int f(int x) {
          switch (x) {
            case 0:
              return 0;
            case 1:
              return 1;
            default:
              return x > 5 ? 5 : x;
          }
        }""",
    ]

    @pytest.mark.parametrize("index", range(len(CASES)))
    def test_fuzzy_and_strict_cc_agree(self, index):
        from repro.lang import parse_translation_unit
        from repro.lang.minic import ast as minic_ast
        source = self.CASES[index]
        fuzzy = parse_translation_unit(source, "case.c") \
            .function("f").cyclomatic_complexity
        strict = parse_program(source, "case.c")
        conditions = sum(decision.condition_count
                         for decision in strict.decisions)
        cases = sum(1 for statement in strict.statements
                    if isinstance(statement, minic_ast.SwitchCase)
                    and statement.value is not None)
        assert fuzzy == 1 + conditions + cases

    def test_interpreter_throughput(self, benchmark):
        """Baseline of the coverage engine: statements per second."""
        source = ("float burn(int n) { float s = 0.0f; "
                  "for (int i = 0; i < n; i++) { "
                  "s += i * 0.5f; if (s > 1000.0f) { s *= 0.5f; } } "
                  "return s; }")
        interpreter = Interpreter(parse_program(source))
        result = benchmark(lambda: interpreter.run("burn", [2000]))
        assert result > 0
