"""Benchmark: the generalization claim on the Autoware-like corpus.

Section 2 of the paper: "the conclusions we derive for Apollo in this
work hold to a large extent for all AD frameworks."  This bench runs the
complete assessment on the full-scale Autoware-like corpus (~140k LOC,
a ROS-era module decomposition) and checks that the observation pattern
and table verdicts match Apollo's.
"""

import pytest

from repro.core import assess_corpus
from repro.corpus import autoware_spec, generate_corpus
from repro.iso26262 import Verdict, render_observations


@pytest.fixture(scope="module")
def autoware_assessment():
    return assess_corpus(generate_corpus(autoware_spec(scale=1.0)))


class TestAutowareFullScale:
    def test_autoware_assessment(self, benchmark, autoware_assessment):
        corpus = generate_corpus(autoware_spec(scale=0.2))
        benchmark.pedantic(lambda: assess_corpus(corpus), rounds=1,
                           iterations=1)

        result = autoware_assessment
        print(f"\nAutoware-like corpus: {result.total_loc} LOC, "
              f"{result.total_functions} functions, "
              f"{result.moderate_or_higher} above CC 10")
        print(render_observations(result.observations))

        # Same headline story as Apollo.
        assert result.total_loc > 100_000
        table = result.tables["modeling_coding"]
        for key in ("low_complexity", "language_subsets",
                    "strong_typing", "defensive_implementation"):
            assert table.assessment(key).verdict \
                is Verdict.NON_COMPLIANT, key
        assert table.assessment("style_guides").verdict \
            is Verdict.COMPLIANT
        unsupported = [observation.number
                       for observation in result.observations
                       if not observation.supported]
        assert unsupported == [], unsupported

    def test_component_size_observation_at_scale(self,
                                                 autoware_assessment):
        """Observation 13 needs full-size modules; at scale 1.0 the big
        Autoware modules exceed the 10k-LOC component limit too."""
        architecture = autoware_assessment.evidence.get("architecture")
        assert architecture.stat("oversized_components") >= 2
