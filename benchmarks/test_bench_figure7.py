"""Benchmark regenerating Figure 7: object detection under each library.

Paper anchors: CUTLASS- and ISAAC-based implementations are competitive
with the closed cuBLAS/cuDNN baseline, while "the same operations run on
the CPU cores using highly optimized libraries (ATLAS and OpenBLAS) with
two orders of magnitude higher execution time".
"""

from repro.perf import (
    relative_to_baseline,
    render_case_study,
    run_case_study,
)


class TestFigure7:
    def test_figure7(self, benchmark, case_study_results):
        results = benchmark.pedantic(run_case_study, rounds=3,
                                     iterations=1)
        print("\nFigure 7 — Apollo object detection per implementation:")
        print(render_case_study(results))
        relatives = relative_to_baseline(results)

        # Open-source GPU libraries are competitive with their
        # closed-source counterparts (within ~15% here; paper: "provide
        # competitive performance").
        assert 0.85 <= relatives["CUTLASS"] / relatives["cuBLAS"] <= 1.18
        assert 0.85 <= relatives["ISAAC"] / relatives["cuDNN"] <= 1.18
        # The CPU BLAS path is two orders of magnitude slower.
        assert 50.0 <= relatives["ATLAS"] <= 400.0
        assert 50.0 <= relatives["OpenBLAS"] <= 400.0
        # Direct convolution (cuDNN path) beats im2col+GEMM lowering.
        assert relatives["cuDNN"] < relatives["cuBLAS"]

    def test_figure7_deterministic(self, case_study_results):
        again = run_case_study()
        assert [result.seconds_per_frame for result in again] == \
            [result.seconds_per_frame
             for result in case_study_results]

    def test_workload_comes_from_real_network(self):
        """The priced FLOPs are the actual YOLO-lite conv workloads."""
        from repro.dnn import YoloConfig, build_yolo_lite
        network = build_yolo_lite(YoloConfig())
        workloads = network.conv_workloads()
        assert len(workloads) == 6
        total_gflops = network.total_conv_flops / 1e9
        print(f"\nYOLO-lite conv work per frame: {total_gflops:.2f} GFLOP")
        assert 1.0 < total_gflops < 50.0
