"""Micro-benchmark: NullTracer instrumentation must be within noise.

The telemetry PR threaded spans and counters through every pipeline
stage.  With the default :data:`~repro.obs.NULL_TRACER` those are shared
no-op objects, so the instrumented pipeline must run at the same speed
as a hand-rolled un-instrumented equivalent of the same stages.  This
benchmark measures both, asserts the ratio, and appends a data point to
``BENCH_pipeline.json`` at the repo root for trend tracking.
"""

import json
import os
import statistics
import time

from repro.checkers.architecture import ArchitectureChecker
from repro.checkers.casts import CastChecker
from repro.checkers.defensive import DefensiveChecker
from repro.checkers.globals_check import GlobalVariableChecker
from repro.checkers.gpu_subset import GpuSubsetChecker
from repro.checkers.misra import MisraChecker
from repro.checkers.naming import NamingChecker
from repro.checkers.style import StyleChecker
from repro.checkers.unitdesign import UnitDesignChecker
from repro.core import AssessmentPipeline, PipelineConfig
from repro.core.config import PipelineConfig as _Config
from repro.corpus import apollo_spec, generate_corpus
from repro.iso26262.compliance import ComplianceEngine
from repro.iso26262.observations import generate_observations
from repro.lang.cppmodel import parse_translation_unit
from repro.metrics.complexity import summarize_units
from repro.metrics.loc import EMPTY_LINE_COUNTS, count_lines
from repro.metrics.report import ModuleMetrics
from repro.obs import Tracer

SCALE = 0.02
ROUNDS = 5
#: NullTracer spans are shared no-op context managers; anything past
#: this ratio means the disabled path grew real work.
MAX_OVERHEAD_RATIO = 1.25

BENCH_FILE = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_pipeline.json")


def _baseline_assess(sources):
    """The pipeline's stages with zero telemetry plumbing (pre-PR shape)."""
    config = _Config()
    units = []
    for path in sorted(sources):
        units.append(parse_translation_unit(sources[path], path))
    by_module = {}
    for unit in units:
        by_module.setdefault(config.module_of(unit.filename),
                             []).append(unit)
    modules = []
    for name, members in sorted(by_module.items()):
        lines = EMPTY_LINE_COUNTS
        for unit in members:
            lines = lines + count_lines(sources.get(unit.filename, ""),
                                        unit.tokens)
        modules.append(ModuleMetrics(
            name=name, lines=lines, file_count=len(members),
            complexity=summarize_units(members),
            class_count=sum(len(u.classes) for u in members),
            global_count=sum(len(u.mutable_globals) for u in members)))
    style = StyleChecker(config.style)
    for path, source in sources.items():
        style.add_source(path, source)
    checkers = [MisraChecker(), CastChecker(), DefensiveChecker(),
                GlobalVariableChecker(), NamingChecker(), style,
                UnitDesignChecker(),
                ArchitectureChecker(config.architecture, config.module_of),
                GpuSubsetChecker()]
    reports = {checker.name: checker.check_project(units)
               for checker in checkers}
    pipeline = AssessmentPipeline(config)
    evidence = pipeline._assemble_evidence(modules, reports)
    tables = ComplianceEngine(
        target_asil=config.target_asil,
        thresholds=config.thresholds).assess_all(evidence)
    return tables, generate_observations(evidence)


def _median_seconds(callable_, rounds=ROUNDS):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


class TestPipelineOverhead:
    def test_null_tracer_overhead_within_noise(self):
        sources = generate_corpus(apollo_spec(scale=SCALE)).sources()
        pipeline = AssessmentPipeline()  # NullTracer default
        # interleaved warmup so both paths see warm caches
        _baseline_assess(sources)
        pipeline.run(sources)

        baseline = _median_seconds(lambda: _baseline_assess(sources))
        instrumented = _median_seconds(lambda: pipeline.run(sources))
        ratio = instrumented / baseline
        print(f"\nbaseline {baseline * 1000:.1f}ms, "
              f"NullTracer {instrumented * 1000:.1f}ms, "
              f"ratio {ratio:.3f}")

        _record_bench_point(len(sources), baseline, instrumented, ratio)
        assert ratio <= MAX_OVERHEAD_RATIO, (
            f"NullTracer instrumentation overhead {ratio:.2f}x exceeds "
            f"{MAX_OVERHEAD_RATIO}x")

    def test_active_tracer_still_reasonable(self):
        # An *enabled* tracer may cost more, but must stay in the same
        # order of magnitude — spans are per file/checker, not per token.
        sources = generate_corpus(apollo_spec(scale=SCALE)).sources()
        null_pipeline = AssessmentPipeline()
        null_pipeline.run(sources)
        null_time = _median_seconds(lambda: null_pipeline.run(sources),
                                    rounds=3)

        def traced_run():
            AssessmentPipeline(PipelineConfig(tracer=Tracer())).run(sources)

        traced_run()
        traced_time = _median_seconds(traced_run, rounds=3)
        assert traced_time / null_time <= 2.0


def _record_bench_point(file_count, baseline, instrumented, ratio):
    document = {"benchmark": "pipeline_overhead", "points": []}
    if os.path.exists(BENCH_FILE):
        try:
            with open(BENCH_FILE, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            pass
    document.setdefault("points", []).append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "corpus_scale": SCALE,
        "files": file_count,
        "baseline_seconds": round(baseline, 6),
        "null_tracer_seconds": round(instrumented, 6),
        "overhead_ratio": round(ratio, 4),
    })
    with open(BENCH_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
