"""Benchmarks for the extension studies built on the paper's conclusions.

1. The remediation plan (the paper's effort taxonomy) over the full
   assessment.
2. The uncalled-function-exclusion methodology choice: Figure 5 measured
   with and without the paper's filtering.
3. The WCET-cost proxy: NPATH explosion on the YOLO MiniC modules, the
   quantitative form of "complexity challenges timing analysis".
4. The GPU-safe-subset audit over the corpus and the shipped kernels.
"""

from repro.core import Effort, effort_histogram, plan_remediation, \
    render_plan
from repro.coverage import CoverageRunner
from repro.dnn.minic_yolo import YOLO_FILES, scenario_suite
from repro.lang.minic import parse_program
from repro.metrics import npath_program


class TestRemediationPlan:
    def test_remediation_plan(self, benchmark, full_assessment):
        plan = benchmark.pedantic(
            lambda: plan_remediation(full_assessment.tables),
            rounds=5, iterations=1)
        print("\n" + render_plan(plan))
        histogram = effort_histogram(plan)
        # The paper's split: some gaps close with limited/moderate
        # engineering effort, others need research innovations.
        assert histogram["RESEARCH"] >= 2
        assert histogram["LOW"] + histogram["MODERATE"] >= 4
        assert histogram["SIGNIFICANT"] >= 3
        research = {item.technique_key for item in plan
                    if item.effort is Effort.RESEARCH}
        assert "language_subsets" in research


class TestExclusionMethodology:
    def test_exclusion_ablation(self, benchmark):
        """Quantify the paper's 'we excluded all those functions that
        were not called' choice on one representative file."""
        def measure(exclude):
            runner = CoverageRunner(YOLO_FILES["region_layer.c"],
                                    "region_layer.c")
            runner.run_suite(scenario_suite("region_layer.c"))
            return runner.coverage(exclude_uncalled=exclude)

        filtered = benchmark.pedantic(lambda: measure(True), rounds=2,
                                      iterations=1)
        raw = measure(False)
        print(f"\nregion_layer.c statement coverage: "
              f"raw {raw.statement_percent:.1f}%, "
              f"uncalled-excluded {filtered.statement_percent:.1f}%")
        # Exclusion can only raise (or keep) the reported coverage.
        assert filtered.statement_percent >= raw.statement_percent
        assert filtered.branch_percent >= raw.branch_percent


class TestWcetProxy:
    def test_npath_on_yolo_modules(self, benchmark):
        def measure():
            totals = {}
            for filename, source in YOLO_FILES.items():
                program = parse_program(source, filename)
                totals[filename] = sum(npath_program(program).values())
            return totals

        totals = benchmark.pedantic(measure, rounds=3, iterations=1)
        print("\nNPATH (static path count) per YOLO module:")
        for filename, paths in sorted(totals.items(),
                                      key=lambda item: -item[1]):
            print(f"  {filename:<24}{paths:>10}")
        # The branch-dense modules dominate path counts — the timing-
        # analysis cost the paper warns about.
        assert totals["gemm.c"] > totals["upsample.c"]
        assert max(totals.values()) > 100


class TestGpuSubsetAudit:
    def test_corpus_gpu_subset(self, benchmark, full_assessment):
        report = full_assessment.reports["gpu_subset"]
        print(f"\ncorpus GPU-subset audit: "
              f"{report.stats['subset_compliant_kernels']:.0f}/"
              f"{report.stats['kernels_checked']:.0f} kernels compliant, "
              f"{report.stats['stream_rewrites_needed']:.0f} stream "
              f"rewrites needed for a Brook Auto port")
        assert report.stats["kernels_checked"] == 56
        # The corpus kernels follow the guarded idiom; host wrappers own
        # the dynamic memory (Figure 4 structure).
        assert report.stats["subset_compliant_kernels"] == 56
        assert report.stats["stream_rewrites_needed"] > 56

        from repro.checkers import GpuSubsetChecker
        from repro.gpu.kernels import ALL_KERNELS_SOURCE
        strict = benchmark.pedantic(
            lambda: GpuSubsetChecker().check_program(
                parse_program(ALL_KERNELS_SOURCE), "kernels.cu"),
            rounds=3, iterations=1)
        assert strict.stats["subset_compliant_kernels"] == \
            strict.stats["kernels_checked"]


class TestAsilSensitivity:
    def test_asil_sensitivity(self, benchmark, full_assessment):
        """What relaxing the target ASIL would buy — the flip side of the
        paper's 'AD systems will reach ASIL-D' premise."""
        from repro.iso26262 import asil_sensitivity, render_sensitivity
        profiles = benchmark.pedantic(
            lambda: asil_sensitivity(full_assessment.evidence),
            rounds=3, iterations=1)
        print("\n" + render_sensitivity(profiles))
        weights = [profile.weighted for profile in profiles]
        assert weights == sorted(weights)
        # At ASIL D every measured gap is binding; at ASIL A several
        # requirements ('o' graded) stop binding.
        assert profiles[-1].weighted > profiles[0].weighted


class TestRemediationRoundTrip:
    def test_roundtrip_diff(self, benchmark):
        """Baseline vs remediated corpus: the paper's effort split,
        measured.  (The remediated corpus is generated at a reduced scale
        to keep the bench under a minute; verdicts are scale-invariant
        except component size.)"""
        from repro.core import assess_corpus, diff_assessments, \
            gap_reduction
        from repro.corpus import apollo_remediated_spec, apollo_spec, \
            generate_corpus

        def roundtrip():
            before = assess_corpus(
                generate_corpus(apollo_spec(scale=0.15)))
            after = assess_corpus(
                generate_corpus(apollo_remediated_spec(scale=0.15)))
            return before, after

        before, after = benchmark.pedantic(roundtrip, rounds=1,
                                           iterations=1)
        diff = diff_assessments(before, after)
        print("\n" + diff.render())
        reduction = gap_reduction(before, after)
        print(f"weighted gap: {reduction['before']} -> "
              f"{reduction['after']}")
        assert len(diff.improved) >= 6
        assert diff.regressed == []
        assert reduction["after"] < reduction["before"]
        residual = {entry.technique_key for entry in diff.residual_gaps}
        assert "language_subsets" in residual  # the research agenda
