"""Benchmark for the Figure 4 discussion: the CUDA programming idiom.

Figure 4 is qualitative — the paper prints the ``scale_bias_gpu`` excerpt
to show that CUDA intrinsically builds on pointers and dynamic memory.
This benchmark runs the reproduction's checkers over that exact excerpt
and asserts Observations 3 and 4, then executes the same kernel under the
GPU emulator to show the code is real, not a strawman.
"""

import numpy as np

from repro.checkers import MisraChecker, UnitDesignChecker
from repro.gpu import CudaRuntime
from repro.gpu.kernels import ALL_KERNELS_SOURCE, SCALE_BIAS_CUDA_EXCERPT
from repro.gpu.kernels.yolo_layers import launch_scale_bias, \
    scale_bias_reference
from repro.lang import parse_translation_unit


class TestFigure4:
    def test_figure4_static_findings(self, benchmark):
        def analyze():
            unit = parse_translation_unit(SCALE_BIAS_CUDA_EXCERPT,
                                          "scale_bias.cu")
            misra = MisraChecker().check_project([unit])
            unit_design = UnitDesignChecker().check_project([unit])
            return unit, misra, unit_design

        unit, misra, unit_design = benchmark.pedantic(analyze, rounds=5,
                                                      iterations=1)
        kernel = unit.function("scale_bias_kernel")
        wrapper = unit.function("scale_bias_gpu")

        print("\nFigure 4 checker findings on the scale_bias excerpt:")
        for finding in misra.findings + unit_design.findings:
            print("  " + finding.located())

        # Observation 4: output/biases are pointers into dynamically
        # created device arrays; cudaMalloc allocates them.
        assert kernel.is_cuda_kernel
        assert kernel.parameters[0].is_pointer
        assert kernel.parameters[1].is_pointer
        assert wrapper.allocation_calls >= 2
        assert wrapper.deallocation_calls >= 2
        assert wrapper.kernel_launches == 1
        assert misra.stats["gpu_functions_with_pointers"] == 1
        assert any(finding.rule == "D4.12" for finding in misra.findings)
        assert unit_design.stats["pointer_functions"] == 2

    def test_figure4_kernel_executes(self, benchmark):
        runtime = CudaRuntime(ALL_KERNELS_SOURCE)
        rng = np.random.default_rng(4)
        tensor = rng.normal(size=(2, 4, 3, 3))
        biases = rng.normal(size=4)

        result = benchmark.pedantic(
            lambda: launch_scale_bias(runtime, tensor, biases),
            rounds=2, iterations=1)
        assert np.allclose(result, scale_bias_reference(tensor, biases))
