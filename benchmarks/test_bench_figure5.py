"""Benchmark regenerating Figure 5: YOLO CPU code coverage.

Paper anchors: averages 83% / 75% / 61% for statement / branch / MC/DC,
minima as low as 19% / 37% / 10% for individual files, with uncalled
functions excluded.  The reproduction asserts the *shape*: the same metric
ordering, averages in the same region, and badly-covered outlier files.
"""

from repro.dnn.minic_yolo import YOLO_FILES, run_yolo_coverage


class TestFigure5:
    def test_figure5(self, benchmark, yolo_campaign):
        campaign = benchmark.pedantic(run_yolo_coverage, rounds=1,
                                      iterations=1)
        print("\nFigure 5 — YOLO real-scenario coverage per file:")
        print(campaign.render())
        averages = (campaign.average("statement"),
                    campaign.average("branch"),
                    campaign.average("mcdc"))
        minima = (campaign.minimum("statement"),
                  campaign.minimum("branch"),
                  campaign.minimum("mcdc"))
        print(f"paper averages: 83.0 / 75.0 / 61.0 ; "
              f"measured: {averages[0]:.1f} / {averages[1]:.1f} / "
              f"{averages[2]:.1f}")
        print(f"paper minima  : 19.0 / 37.0 / 10.0 ; "
              f"measured: {minima[0]:.1f} / {minima[1]:.1f} / "
              f"{minima[2]:.1f}")

        assert len(campaign.files) == len(YOLO_FILES)
        # Shape: statement > branch > MC/DC on average.
        assert averages[0] > averages[1] > averages[2]
        # Region: same ballpark as the paper's 83/75/61.
        assert 70.0 <= averages[0] <= 93.0
        assert 60.0 <= averages[1] <= 88.0
        assert 45.0 <= averages[2] <= 78.0
        # Outliers: some files are badly covered, as in the paper.
        assert minima[0] <= 45.0
        assert minima[1] <= 50.0
        assert minima[2] <= 35.0
        # Coverage is nowhere impossible.
        for record in campaign.files:
            assert 0.0 <= record.mcdc_percent <= 100.0
            assert record.branch_percent <= 100.0

    def test_observation_10(self, yolo_campaign):
        from repro.iso26262 import tooling_observations
        observation = tooling_observations(
            coverage_average=yolo_campaign.average("statement"))[0]
        print("\n" + observation.render())
        assert observation.supported

    def test_coverage_directed_tests_close_the_gap(self):
        """The remediation the paper calls for: added test cases raise
        coverage far above the real-scenario baseline."""
        from repro.coverage import CoverageRunner, TestVector
        source = YOLO_FILES["activations.c"]
        baseline = CoverageRunner(source, "activations.c")
        from repro.dnn.minic_yolo import scenario_suite
        baseline.run_suite(scenario_suite("activations.c"))
        base = baseline.coverage(exclude_uncalled=True).statement_percent

        extended = CoverageRunner(source, "activations.c")
        extended.run_suite(scenario_suite("activations.c"))
        extended.run_suite([
            TestVector("activate", (0.5, t)) for t in range(7)
        ] + [
            TestVector("activate", (-0.5, t)) for t in range(7)
        ] + [
            TestVector("gradient", (0.5, t)) for t in range(6)
        ] + [
            TestVector("gradient", (-0.5, t)) for t in range(6)
        ])
        improved = extended.coverage(
            exclude_uncalled=True).statement_percent
        print(f"\nactivations.c statement coverage: real-scenario "
              f"{base:.1f}% -> coverage-directed {improved:.1f}%")
        assert improved > base + 30.0
        assert improved == 100.0
