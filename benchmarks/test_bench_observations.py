"""Benchmark regenerating all fourteen observations of the paper.

Observations 1-9, 13, 14 derive from the full-corpus static analysis;
Observation 10 from the Figure 5 coverage campaign; Observation 11 from
the tooling landscape; Observation 12 from the Figure 7 case study.
Section 3.1.3's ">1,400 explicit castings" and Section 3.5's "41%
multi-exit in object detection" / "~900 globals in perception" anchors
are asserted here as well.
"""

from repro.iso26262 import (
    generate_observations,
    render_observations,
    tooling_observations,
)
from repro.perf import relative_to_baseline


class TestObservations:
    def test_all_fourteen(self, benchmark, full_assessment, yolo_campaign,
                          case_study_results):
        def derive():
            static = generate_observations(full_assessment.evidence)
            relatives = relative_to_baseline(case_study_results)
            tooling = tooling_observations(
                coverage_average=yolo_campaign.average("statement"),
                open_vs_closed_relative=(relatives["cuDNN"]
                                         / relatives["ISAAC"]))
            return static + tooling

        observations = benchmark.pedantic(derive, rounds=3, iterations=1)
        print("\n" + render_observations(observations))

        assert len(observations) == 14
        numbers = {observation.number for observation in observations}
        assert numbers == set(range(1, 15))
        unsupported = [observation.number for observation in observations
                       if not observation.supported]
        assert unsupported == [], (
            f"observations {unsupported} not reproduced")

    def test_section_3_1_3_casts_anchor(self, full_assessment):
        casts = full_assessment.evidence.get("strong_typing") \
            .stat("explicit_casts")
        print(f"\nexplicit casts: paper '>1,400', measured {casts:.0f}")
        assert casts > 1_400

    def test_section_3_5_perception_anchors(self, full_corpus):
        from repro.checkers import GlobalVariableChecker, UnitDesignChecker
        from repro.lang import parse_translation_unit
        units = [parse_translation_unit(record.source, record.path)
                 for record in full_corpus.files_of("perception")]

        globals_report = GlobalVariableChecker().check_project(units)
        mutable = globals_report.stats["mutable_globals"]
        print(f"\nperception mutable globals: paper '~900', "
              f"measured {mutable:.0f}")
        assert 850 <= mutable <= 950

        unit_design = UnitDesignChecker().check_project(units)
        ratio = unit_design.stats["multi_exit_ratio"]
        print(f"object-detection multi-exit ratio: paper '41%', "
              f"measured {100 * ratio:.1f}%")
        assert 0.33 <= ratio <= 0.48

    def test_observation_counts_in_report(self, full_assessment):
        payload = full_assessment.to_dict()
        assert len(payload["observations"]) == 11  # static subset
        assert payload["verdicts"]["non-compliant"] >= 8
