"""Shared state for the benchmark harness.

The full-scale corpus (~230k LOC) and its assessment are expensive
(~30 s), so they are built once per session and shared by every
table/figure benchmark.
"""

import pytest

from repro.corpus import apollo_spec, generate_corpus
from repro.core import assess_corpus


@pytest.fixture(scope="session")
def full_corpus():
    """The calibrated Apollo-like corpus at full scale."""
    return generate_corpus(apollo_spec(scale=1.0))


@pytest.fixture(scope="session")
def full_assessment(full_corpus):
    """The complete ISO 26262 assessment of the full corpus."""
    return assess_corpus(full_corpus)


@pytest.fixture(scope="session")
def yolo_campaign():
    """The Figure 5 coverage campaign (real-scenario tests)."""
    from repro.dnn.minic_yolo import run_yolo_coverage
    return run_yolo_coverage()


@pytest.fixture(scope="session")
def case_study_results():
    """The Figure 7 performance case study."""
    from repro.perf import run_case_study
    return run_case_study()
