"""Benchmark regenerating Figure 6: CUDA-on-CPU stencil coverage.

The paper ports 2D/3D stencil kernels to the CPU with cuda4cpu and
measures statement and branch coverage, finding that "full code coverage
is not achieved either for statements or branches".  Here the same
kernels run through the emulated CUDA runtime under the coverage engine.
"""

import numpy as np

from repro.coverage import CoverageCollector, summarize_collector
from repro.gpu import CudaRuntime
from repro.gpu.kernels.sources import STENCIL2D_SOURCE, STENCIL3D_SOURCE
from repro.gpu.kernels.stencil import launch_stencil2d, launch_stencil3d
from repro.lang.minic import parse_program


def _measure(kernel_source, launcher, payload):
    program = parse_program(kernel_source, "stencil.cu")
    collector = CoverageCollector(program)
    runtime = CudaRuntime(program, tracer=collector)
    launcher(runtime, payload, 0.2)
    return summarize_collector(collector, "stencil.cu", with_mcdc=False)


class TestFigure6:
    def test_figure6(self, benchmark):
        rng = np.random.default_rng(6)

        def run_both():
            # Production launches size the grid to tile the data exactly
            # (16x16 over 8x8 blocks, 4^3 over 4^3 blocks), so the
            # out-of-range guards never fire — precisely why the paper
            # finds full coverage unreachable with application traffic.
            two_d = _measure(STENCIL2D_SOURCE, launch_stencil2d,
                             rng.normal(size=(16, 16)))
            three_d = _measure(STENCIL3D_SOURCE, launch_stencil3d,
                               rng.normal(size=(4, 4, 4)))
            return two_d, three_d

        two_d, three_d = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
        print("\nFigure 6 — stencil kernels run on the CPU (cuda4cpu "
              "style):")
        print(f"  2D stencil: statement {two_d.statement_percent:.1f}%  "
              f"branch {two_d.branch_percent:.1f}%")
        print(f"  3D stencil: statement {three_d.statement_percent:.1f}%  "
              f"branch {three_d.branch_percent:.1f}%")

        for coverage in (two_d, three_d):
            # Real coverage was measured...
            assert coverage.statement_percent > 50.0
            # ...but, as the paper reports, "full code coverage is not
            # achieved either for statements or branches".
            assert coverage.statement_percent < 100.0
            assert coverage.branch_percent < 100.0
            assert coverage.branch_percent <= coverage.statement_percent

    def test_block_geometry_changes_coverage(self):
        """Launch geometry affects which guard branches fire — the reason
        on-target coverage measurement matters for GPU code."""
        rng = np.random.default_rng(7)
        grid = rng.normal(size=(8, 8))

        # 8x8 grid with 8x8 blocks: the out-of-range guard never fires.
        from repro.gpu import Dim3
        program = parse_program(STENCIL2D_SOURCE, "stencil.cu")
        collector = CoverageCollector(program)
        runtime = CudaRuntime(program, tracer=collector)
        launch_stencil2d(runtime, grid, 0.2, block=Dim3(8, 8))
        exact = summarize_collector(collector, "s", with_mcdc=False)

        collector2 = CoverageCollector(program)
        runtime2 = CudaRuntime(program, tracer=collector2)
        launch_stencil2d(runtime2, grid, 0.2, block=Dim3(5, 5))
        ragged = summarize_collector(collector2, "s", with_mcdc=False)

        # A ragged launch exercises the range guard both ways.
        assert ragged.branch_percent >= exact.branch_percent
