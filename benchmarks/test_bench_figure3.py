"""Benchmark regenerating Figure 3: complexity, LOC and functions per module.

Paper anchors: >220k LOC total, modules in the tens of kLOC with hundreds
to thousands of functions, and 554 functions of moderate-or-higher
cyclomatic complexity framework-wide.
"""

from repro.metrics import figure3_rows, total_moderate_or_higher


def _render_figure3(rows):
    header = (f"{'module':<16}{'LOC':>8}{'functions':>11}"
              f"{'cc>5':>7}{'cc>10':>7}{'cc>20':>7}{'cc>50':>7}")
    lines = [header, "-" * len(header)]
    for row in sorted(rows, key=lambda entry: -entry["loc"]):
        lines.append(f"{row['module']:<16}{row['loc']:>8}"
                     f"{row['functions']:>11}{row['cc>5']:>7}"
                     f"{row['cc>10']:>7}{row['cc>20']:>7}{row['cc>50']:>7}")
    return "\n".join(lines)


class TestFigure3:
    def test_figure3(self, benchmark, full_assessment):
        rows = benchmark.pedantic(
            lambda: figure3_rows(full_assessment.modules),
            rounds=3, iterations=1)
        print("\n" + _render_figure3(rows))

        # Paper: the entire framework exceeds 220k LOC.
        assert full_assessment.total_loc > 220_000
        # Paper: modules range from 5k to 60k LOC.
        locs = [row["loc"] for row in rows]
        assert min(locs) >= 5_000
        assert max(locs) <= 62_000
        # Paper: 554 functions with moderate or higher complexity.
        assert total_moderate_or_higher(full_assessment.modules) == 554
        # Modules have hundreds-to-thousands of functions.
        for row in rows:
            assert row["functions"] >= 100
        # Bars are monotone in the threshold.
        for row in rows:
            assert row["cc>5"] >= row["cc>10"] >= row["cc>20"] \
                >= row["cc>50"]

    def test_perception_dominates(self, full_assessment):
        rows = {row["module"]: row for row in full_assessment.figure3()}
        assert rows["perception"]["loc"] == max(row["loc"]
                                                for row in rows.values())
        assert rows["perception"]["cc>10"] == 150

    def test_full_corpus_parse_benchmark(self, benchmark, full_corpus):
        """Benchmark the raw analysis front end on one large module."""
        from repro.lang import parse_translation_unit
        files = full_corpus.files_of("canbus")

        def parse_module():
            return [parse_translation_unit(record.source, record.path)
                    for record in files]

        units = benchmark.pedantic(parse_module, rounds=2, iterations=1)
        assert len(units) == len(files)
