"""Benchmark: the parallel + incremental engine vs the serial pipeline.

Measures the assessment wall time at jobs=1/2/4 (thread pool) and with
a warm content-addressed cache, asserts the engine's two contracts —
every configuration is result-identical to the serial run, and a
warm-cache re-assessment beats the cold serial sweep — and appends a
data point to ``BENCH_parallel.json`` at the repo root.

On a single-CPU box the thread-pool points hover around 1.0x (the
parse stage is GIL-bound pure Python); the cache is what carries the
incremental-CI story, so only the warm-cache speedup is asserted.
"""

import json
import os
import statistics
import time

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.corpus import apollo_spec, generate_corpus

#: Corpus scale; override with REPRO_BENCH_SCALE for bigger sweeps.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
ROUNDS = 3

BENCH_FILE = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_parallel.json")


def _median_seconds(callable_, rounds=ROUNDS):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


class TestParallelBenchmark:
    def test_parallel_and_warm_cache(self, tmp_path):
        sources = generate_corpus(apollo_spec(scale=SCALE)).sources()

        def run(**config):
            return AssessmentPipeline(PipelineConfig(**config)).run(sources)

        reference = run()  # warmup + the identity baseline
        serial_seconds = _median_seconds(run)

        parallel_seconds = {}
        for jobs in (2, 4):
            result = run(jobs=jobs)
            assert result.to_dict() == reference.to_dict(), jobs
            parallel_seconds[jobs] = _median_seconds(
                lambda: run(jobs=jobs))

        cache_dir = str(tmp_path / "cache")
        cold_cache = ResultCache(cache_dir)
        cold_start = time.perf_counter()
        cold_result = run(cache=cold_cache)
        cold_seconds = time.perf_counter() - cold_start
        assert cold_result.to_dict() == reference.to_dict()

        warm_result = run(cache=ResultCache(cache_dir))
        assert warm_result.to_dict() == reference.to_dict()
        warm_seconds = _median_seconds(
            lambda: run(cache=ResultCache(cache_dir)))

        print(f"\nserial {serial_seconds * 1000:.1f}ms, "
              f"jobs=2 {parallel_seconds[2] * 1000:.1f}ms, "
              f"jobs=4 {parallel_seconds[4] * 1000:.1f}ms, "
              f"cold-cache {cold_seconds * 1000:.1f}ms, "
              f"warm-cache {warm_seconds * 1000:.1f}ms")

        _record_bench_point(len(sources), serial_seconds,
                            parallel_seconds, cold_seconds, warm_seconds)
        assert warm_seconds < serial_seconds, (
            f"warm cache ({warm_seconds:.3f}s) must beat the cold "
            f"serial sweep ({serial_seconds:.3f}s)")


def _record_bench_point(file_count, serial_seconds, parallel_seconds,
                        cold_seconds, warm_seconds):
    document = {"benchmark": "parallel_incremental", "points": []}
    if os.path.exists(BENCH_FILE):
        try:
            with open(BENCH_FILE, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            pass
    document.setdefault("points", []).append({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "corpus_scale": SCALE,
        "files": file_count,
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 6),
        "jobs2_seconds": round(parallel_seconds[2], 6),
        "jobs4_seconds": round(parallel_seconds[4], 6),
        "cold_cache_seconds": round(cold_seconds, 6),
        "warm_cache_seconds": round(warm_seconds, 6),
        "warm_cache_speedup": round(serial_seconds / warm_seconds, 4),
    })
    with open(BENCH_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
