"""Benchmark: the fused single-sweep engine vs the pre-engine baseline.

Measures the assessment wall time serially, at jobs=2/4 (thread pool),
and with a warm content-addressed cache; asserts the engine's three
contracts — every configuration is result-identical to the serial run,
a warm-cache re-assessment beats the cold serial sweep, and the cold
serial sweep beats the recorded pre-engine baseline for the same corpus
scale by at least ``REPRO_BENCH_MIN_SPEEDUP`` — and appends a data
point to ``BENCH_parallel.json`` at the repo root.

The default corpus scale is 1.0 (the full synthetic Apollo corpus,
~1.4k files / ~230k LOC) so recorded points are comparable with
``baseline_pre_engine.json``; CI and quick local sweeps override with
``REPRO_BENCH_SCALE=0.05``.  On a single-CPU box the thread-pool
points hover around 1.0x (the parse stage is GIL-bound pure Python);
the single-sweep engine and the cache carry the cold and incremental
stories respectively.
"""

import json
import os
import statistics
import time

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.corpus import apollo_spec, generate_corpus

#: Corpus scale; override with REPRO_BENCH_SCALE for quicker sweeps.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: Small corpora are noisy, so take the median of three; the full-scale
#: corpus is stable enough that one timed round per configuration keeps
#: the benchmark under a minute.
ROUNDS = 3 if SCALE <= 0.1 else 1
#: Required cold-serial improvement over the recorded pre-engine
#: baseline.  The engine lands ~3.4-3.8x on the reference box; 2.0
#: leaves headroom for slower or contended CI runners.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))

_HERE = os.path.dirname(__file__)
BENCH_FILE = os.path.join(_HERE, os.pardir, "BENCH_parallel.json")
BASELINE_FILE = os.path.join(_HERE, "baseline_pre_engine.json")


def _median_seconds(callable_, rounds=ROUNDS):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _pre_engine_seconds(scale):
    """The recorded pre-engine cold-serial time for ``scale``, or None."""
    try:
        with open(BASELINE_FILE, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    for point in document.get("points", []):
        if point.get("corpus_scale") == scale:
            return point.get("serial_seconds")
    return None


class TestParallelBenchmark:
    def test_parallel_and_warm_cache(self, tmp_path):
        sources = generate_corpus(apollo_spec(scale=SCALE)).sources()

        def run(**config):
            return AssessmentPipeline(PipelineConfig(**config)).run(sources)

        reference = run()  # warmup + the identity baseline
        serial_seconds = _median_seconds(run)

        parallel_seconds = {}
        for jobs in (2, 4):
            result = run(jobs=jobs)
            assert result.to_dict() == reference.to_dict(), jobs
            parallel_seconds[jobs] = _median_seconds(
                lambda: run(jobs=jobs))

        cache_dir = str(tmp_path / "cache")
        cold_cache = ResultCache(cache_dir)
        cold_start = time.perf_counter()
        cold_result = run(cache=cold_cache)
        cold_seconds = time.perf_counter() - cold_start
        assert cold_result.to_dict() == reference.to_dict()

        warm_result = run(cache=ResultCache(cache_dir))
        assert warm_result.to_dict() == reference.to_dict()
        warm_seconds = _median_seconds(
            lambda: run(cache=ResultCache(cache_dir)))

        pre_engine = _pre_engine_seconds(SCALE)
        engine_speedup = (pre_engine / serial_seconds
                          if pre_engine else None)

        print(f"\nserial {serial_seconds * 1000:.1f}ms, "
              f"jobs=2 {parallel_seconds[2] * 1000:.1f}ms, "
              f"jobs=4 {parallel_seconds[4] * 1000:.1f}ms, "
              f"cold-cache {cold_seconds * 1000:.1f}ms, "
              f"warm-cache {warm_seconds * 1000:.1f}ms"
              + (f", vs pre-engine {engine_speedup:.2f}x"
                 if engine_speedup else ""))

        _record_bench_point(len(sources), serial_seconds,
                            parallel_seconds, cold_seconds, warm_seconds,
                            pre_engine)
        assert warm_seconds < serial_seconds, (
            f"warm cache ({warm_seconds:.3f}s) must beat the cold "
            f"serial sweep ({serial_seconds:.3f}s)")
        if pre_engine is not None:
            assert serial_seconds * MIN_SPEEDUP <= pre_engine, (
                f"cold serial ({serial_seconds:.3f}s) regressed: needs "
                f">= {MIN_SPEEDUP:.1f}x over the pre-engine baseline "
                f"({pre_engine:.3f}s at scale {SCALE}), got "
                f"{pre_engine / serial_seconds:.2f}x")


def _record_bench_point(file_count, serial_seconds, parallel_seconds,
                        cold_seconds, warm_seconds, pre_engine_seconds):
    document = {"benchmark": "parallel_incremental", "points": []}
    if os.path.exists(BENCH_FILE):
        try:
            with open(BENCH_FILE, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            pass
    point = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "corpus_scale": SCALE,
        "files": file_count,
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 6),
        "jobs2_seconds": round(parallel_seconds[2], 6),
        "jobs4_seconds": round(parallel_seconds[4], 6),
        "cold_cache_seconds": round(cold_seconds, 6),
        "warm_cache_seconds": round(warm_seconds, 6),
        "warm_cache_speedup": round(serial_seconds / warm_seconds, 4),
    }
    if pre_engine_seconds:
        point["pre_engine_serial_seconds"] = pre_engine_seconds
        point["engine_speedup"] = round(
            pre_engine_seconds / serial_seconds, 4)
    document.setdefault("points", []).append(point)
    with open(BENCH_FILE, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
