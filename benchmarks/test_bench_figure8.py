"""Benchmarks regenerating Figure 8: open vs closed library kernel sweeps.

8(a): CUTLASS vs cuBLAS on GEMM kernels "widely used in YOLO" plus other
domains — "performance comparable to cuBLAS for scalar GEMM computations".
8(b): ISAAC vs cuDNN on convolution kernels "for a variety of domains" —
"very competitive performance in comparison with cuDNN".
"""

from repro.perf import (
    compare_conv,
    compare_gemm,
    render_conv_table,
    render_gemm_table,
)


class TestFigure8a:
    def test_figure8a(self, benchmark):
        rows = benchmark.pedantic(compare_gemm, rounds=5, iterations=1)
        print("\nFigure 8(a) — GEMM: CUTLASS relative to cuBLAS:")
        print(render_gemm_table(rows))

        relatives = [row.relative for row in rows]
        # Every shape is comparable (paper bars hover around 1.0).
        assert all(0.7 <= value <= 1.3 for value in relatives)
        # Mean close to parity.
        mean = sum(relatives) / len(relatives)
        assert 0.85 <= mean <= 1.10
        # Multiple application domains are represented.
        assert len({row.domain for row in rows}) >= 3

    def test_figure8a_shape_dependence(self):
        """The ratio varies by shape — a flat model could not produce
        Figure 8(a)'s scatter (DESIGN.md ablation)."""
        relatives = [row.relative for row in compare_gemm()]
        assert max(relatives) - min(relatives) > 0.05


class TestFigure8b:
    def test_figure8b(self, benchmark):
        rows = benchmark.pedantic(compare_conv, rounds=5, iterations=1)
        print("\nFigure 8(b) — conv: ISAAC relative to cuDNN:")
        print(render_conv_table(rows))

        relatives = [row.relative for row in rows]
        assert all(0.6 <= value <= 1.4 for value in relatives)
        mean = sum(relatives) / len(relatives)
        assert 0.85 <= mean <= 1.15
        # The input-aware story: ISAAC wins on at least one shape (the
        # heuristic-mismatch channel counts) and loses on at least one
        # cuDNN sweet spot.
        assert any(value > 1.0 for value in relatives)
        assert any(value < 1.0 for value in relatives)

    def test_figure8b_isaac_wins_on_odd_channels(self):
        by_label = {row.label: row for row in compare_conv()}
        # segnet-encoder3 has 121/243 channels — off cuDNN's kernel tables.
        assert by_label["segnet-encoder3"].relative > 1.0
