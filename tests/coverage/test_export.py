"""Tests for the LCOV coverage exporter."""

from repro.coverage import CoverageRunner, TestVector
from repro.coverage.export import to_lcov, write_lcov

SOURCE = """
int f(int x) {
  if (x > 0) {
    return 1;
  }
  return 0;
}
int g(int x) {
  switch (x) {
    case 1:
      return 1;
    default:
      return 0;
  }
}
"""


def make_collector(vectors):
    runner = CoverageRunner(SOURCE, "two.c")
    runner.run_suite(vectors)
    return runner.collector


class TestLcov:
    def test_record_structure(self):
        collector = make_collector([TestVector("f", (1,))])
        tracefile = to_lcov(collector, "two.c")
        assert tracefile.startswith("TN:repro\nSF:two.c\n")
        assert tracefile.rstrip().endswith("end_of_record")
        for marker in ("FN:", "FNDA:", "FNF:", "FNH:", "BRDA:", "BRF:",
                       "BRH:", "DA:", "LF:", "LH:"):
            assert marker in tracefile

    def test_function_hit_counts(self):
        collector = make_collector([TestVector("f", (1,)),
                                    TestVector("f", (2,))])
        tracefile = to_lcov(collector, "two.c")
        assert "FNDA:2,f" in tracefile
        assert "FNDA:0,g" in tracefile
        assert "FNF:2" in tracefile
        assert "FNH:1" in tracefile

    def test_branch_records(self):
        collector = make_collector([TestVector("f", (1,))])
        tracefile = to_lcov(collector, "two.c")
        # The if decision: true taken, false not.
        branch_lines = [line for line in tracefile.splitlines()
                        if line.startswith("BRDA:3,0")]
        assert len(branch_lines) == 2
        assert any(line.endswith(",1") for line in branch_lines)
        assert any(line.endswith(",-") for line in branch_lines)

    def test_switch_clause_branches(self):
        collector = make_collector([TestVector("g", (1,))])
        tracefile = to_lcov(collector, "two.c")
        clause_lines = [line for line in tracefile.splitlines()
                        if line.startswith("BRDA:") and ",1," in line]
        assert clause_lines  # switch clauses present as branch block 1

    def test_line_counts_consistent(self):
        collector = make_collector([TestVector("f", (1,)),
                                    TestVector("f", (-1,)),
                                    TestVector("g", (1,)),
                                    TestVector("g", (9,))])
        tracefile = to_lcov(collector, "two.c")
        lf = int([line for line in tracefile.splitlines()
                  if line.startswith("LF:")][0][3:])
        lh = int([line for line in tracefile.splitlines()
                  if line.startswith("LH:")][0][3:])
        assert lh == lf  # everything executed

    def test_write_multiple_files(self, tmp_path):
        collectors = {
            "a.c": make_collector([TestVector("f", (1,))]),
            "b.c": make_collector([TestVector("g", (1,))]),
        }
        target = tmp_path / "coverage.info"
        write_lcov(collectors, str(target))
        content = target.read_text()
        assert content.count("end_of_record") == 2
        assert "SF:a.c" in content
        assert "SF:b.c" in content
