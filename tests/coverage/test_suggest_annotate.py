"""Tests for MC/DC vector suggestion and annotated-source rendering."""

import pytest

from repro.coverage import (
    CoverageCollector,
    annotate_source,
    evaluate_decision,
    function_coverage_table,
    independence_pairs,
    measure_mcdc_coverage,
    suggest_mcdc_vectors,
    uncovered_summary,
)
from repro.coverage.runner import CoverageRunner, TestVector
from repro.lang.minic import Interpreter, parse_program

COMPOUND = """
int check(int a, int b, int c) {
  if (a > 0 && (b > 0 || c > 0)) {
    return 1;
  }
  return 0;
}
"""


def collect(source, calls):
    program = parse_program(source)
    collector = CoverageCollector(program)
    interpreter = Interpreter(program, tracer=collector)
    for function, args in calls:
        interpreter.run(function, args)
    return program, collector


class TestEvaluateDecision:
    def test_truth_table(self):
        program = parse_program(COMPOUND)
        decision = program.decisions[0]
        outcome, vector = evaluate_decision(decision, (True, True, False))
        assert outcome is True
        assert vector == (True, True, None)  # c short-circuited by b

        outcome, vector = evaluate_decision(decision,
                                            (False, True, True))
        assert outcome is False
        assert vector == (False, None, None)

    def test_short_circuit_none_positions(self):
        program = parse_program(
            "int f(int a, int b) { if (a > 0 || b > 0) { return 1; } "
            "return 0; }")
        decision = program.decisions[0]
        _, vector = evaluate_decision(decision, (True, False))
        assert vector == (True, None)


class TestIndependencePairs:
    def test_and_decision_pairs(self):
        program = parse_program(
            "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } "
            "return 0; }")
        pairs = independence_pairs(program.decisions[0])
        indices = {pair.condition_index for pair in pairs}
        assert indices == {0, 1}

    def test_three_condition_decision(self):
        program = parse_program(COMPOUND)
        pairs = independence_pairs(program.decisions[0])
        indices = {pair.condition_index for pair in pairs}
        assert indices == {0, 1, 2}

    def test_single_condition_no_pairs(self):
        program = parse_program(
            "int f(int a) { if (a > 0) { return 1; } return 0; }")
        pairs = independence_pairs(program.decisions[0])
        # Single condition: a (F) vs (T) pair exists trivially.
        assert len(pairs) == 1


class TestSuggestions:
    def test_suggestions_empty_at_full_mcdc(self):
        _, collector = collect(COMPOUND, [
            ("check", [1, 1, 0]), ("check", [0, 1, 0]),
            ("check", [1, 0, 0]), ("check", [1, 0, 1])])
        assert measure_mcdc_coverage(collector).percent == 100.0
        # The guard decision of `return 0` path: only one decision here.
        assert suggest_mcdc_vectors(collector) == []

    def test_suggestions_identify_missing_condition(self):
        # Only (T,T,-) and (F,-,-): conditions b and c undemonstrated.
        _, collector = collect(COMPOUND, [("check", [1, 1, 0]),
                                          ("check", [0, 0, 0])])
        suggestions = suggest_mcdc_vectors(collector)
        indices = {suggestion.condition_index
                   for suggestion in suggestions}
        assert 1 in indices
        assert 2 in indices

    def test_following_suggestions_reaches_full_mcdc(self):
        program, collector = collect(COMPOUND, [("check", [1, 1, 0]),
                                                ("check", [0, 0, 0])])
        interpreter = Interpreter(program, tracer=collector)
        for _ in range(4):  # a few rounds close every gap
            suggestions = suggest_mcdc_vectors(collector)
            if not suggestions:
                break
            for suggestion in suggestions:
                for assignment in suggestion.needed_assignments:
                    args = [1 if value else 0 for value in assignment]
                    interpreter.run("check", args)
        assert measure_mcdc_coverage(collector).percent == 100.0

    def test_single_condition_suggestion(self):
        source = ("int f(int a) { if (a > 0) { return 1; } return 0; }")
        _, collector = collect(source, [("f", [1])])
        suggestions = suggest_mcdc_vectors(collector)
        assert len(suggestions) == 1
        assert suggestions[0].needed_assignments == ((False,),)

    def test_describe_is_readable(self):
        _, collector = collect(COMPOUND, [("check", [1, 1, 0])])
        suggestions = suggest_mcdc_vectors(collector)
        text = suggestions[0].describe()
        assert "decision at line" in text
        assert "(" in text


class TestAnnotation:
    SOURCE = """int f(int x) {
  int y = 0;
  if (x > 0) {
    y = 1;
  } else {
    y = 2;
  }
  return y;
}"""

    def test_annotate_marks_hits_and_misses(self):
        runner = CoverageRunner(self.SOURCE, "f.c")
        runner.run_vector(TestVector("f", (1,)))
        rendered = annotate_source(self.SOURCE, runner.collector)
        lines = rendered.split("\n")
        assert any("####|" in line and "y = 2" in line for line in lines)
        assert any(line.strip().startswith("1|") and "y = 1" in line
                   for line in lines)
        assert any("branch not fully covered" in line for line in lines)

    def test_annotate_full_coverage_has_no_marks(self):
        runner = CoverageRunner(self.SOURCE, "f.c")
        runner.run_suite([TestVector("f", (1,)), TestVector("f", (0,))])
        rendered = annotate_source(self.SOURCE, runner.collector)
        assert "####|" not in rendered
        assert "branch not fully covered" not in rendered

    def test_uncovered_summary(self):
        runner = CoverageRunner(self.SOURCE, "f.c")
        runner.run_vector(TestVector("f", (1,)))
        summary = uncovered_summary(runner.collector)
        assert "never-executed" in summary
        assert "not taken" in summary

    def test_uncovered_summary_clean(self):
        runner = CoverageRunner(self.SOURCE, "f.c")
        runner.run_suite([TestVector("f", (1,)), TestVector("f", (0,))])
        assert "full statement and branch coverage" in \
            uncovered_summary(runner.collector)

    def test_function_table(self):
        source = self.SOURCE + "\nint g(int x) { return x; }"
        runner = CoverageRunner(source, "f.c")
        runner.run_vector(TestVector("f", (1,)))
        table = function_coverage_table(runner.collector)
        assert "f" in table
        assert "g" in table
        assert "stmt%" in table
