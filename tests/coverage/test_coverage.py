"""Tests for the statement/branch/MC/DC coverage engine."""

import pytest

from repro.coverage import (
    CoverageCollector,
    CoverageRunner,
    TestVector,
    build_campaign,
    measure_branch_coverage,
    measure_mcdc_coverage,
    measure_statement_coverage,
)
from repro.coverage.instrument import build_function_maps, exclusion_sets
from repro.errors import CoverageError
from repro.lang.minic import Interpreter, parse_program


def run_and_collect(source, calls):
    program = parse_program(source)
    collector = CoverageCollector(program)
    interpreter = Interpreter(program, tracer=collector)
    for function, args in calls:
        interpreter.run(function, args)
    return collector


SIMPLE = """
int f(int x) {
  int y = 0;
  if (x > 0) {
    y = 1;
  } else {
    y = 2;
  }
  return y;
}
"""


class TestStatementCoverage:
    def test_full_coverage(self):
        collector = run_and_collect(SIMPLE, [("f", [1]), ("f", [-1])])
        coverage = measure_statement_coverage(collector)
        assert coverage.percent == 100.0
        assert coverage.uncovered_lines == ()

    def test_partial_coverage(self):
        collector = run_and_collect(SIMPLE, [("f", [1])])
        coverage = measure_statement_coverage(collector)
        assert coverage.covered == coverage.total - 1
        assert len(coverage.uncovered_lines) == 1

    def test_no_execution(self):
        collector = run_and_collect(SIMPLE, [])
        coverage = measure_statement_coverage(collector)
        assert coverage.covered == 0
        assert coverage.percent == 0.0

    def test_empty_program_is_100(self):
        collector = run_and_collect("", [])
        assert measure_statement_coverage(collector).percent == 100.0

    def test_include_filter(self):
        collector = run_and_collect(SIMPLE, [("f", [1])])
        coverage = measure_statement_coverage(collector, include=set())
        assert coverage.total == 0
        assert coverage.percent == 100.0


class TestBranchCoverage:
    def test_both_outcomes_needed(self):
        collector = run_and_collect(SIMPLE, [("f", [1])])
        coverage = measure_branch_coverage(collector)
        assert coverage.total == 2
        assert coverage.covered == 1

        collector = run_and_collect(SIMPLE, [("f", [1]), ("f", [0])])
        assert measure_branch_coverage(collector).percent == 100.0

    def test_loop_counts_as_decision(self):
        source = ("int f(int n) { int s = 0; "
                  "for (int i = 0; i < n; i++) { s++; } return s; }")
        collector = run_and_collect(source, [("f", [3])])
        coverage = measure_branch_coverage(collector)
        # Loop entered (true) and exited (false): both covered.
        assert coverage.percent == 100.0

    def test_loop_never_entered(self):
        source = ("int f(int n) { int s = 0; "
                  "while (n > 100) { s++; n++; } return s; }")
        collector = run_and_collect(source, [("f", [1])])
        assert measure_branch_coverage(collector).covered == 1

    def test_switch_cases_are_branches(self):
        source = ("int f(int x) { switch (x) { case 1: return 1; "
                  "case 2: return 2; default: return 0; } }")
        collector = run_and_collect(source, [("f", [1])])
        coverage = measure_branch_coverage(collector)
        assert coverage.total == 3
        assert coverage.covered == 1

        collector = run_and_collect(source, [("f", [1]), ("f", [2]),
                                             ("f", [7])])
        assert measure_branch_coverage(collector).percent == 100.0

    def test_uncovered_records_describe_branch(self):
        collector = run_and_collect(SIMPLE, [("f", [1])])
        uncovered = measure_branch_coverage(collector).uncovered
        assert len(uncovered) == 1
        assert "false" in uncovered[0].description


COMPOUND = """
int check(int a, int b) {
  if (a > 0 && b > 0) {
    return 1;
  }
  return 0;
}
"""


class TestMcdcCoverage:
    def test_branch_full_but_mcdc_partial(self):
        # (T,T) and (F,-): both branch outcomes, but b never shown
        # independent.
        collector = run_and_collect(COMPOUND, [("check", [1, 1]),
                                               ("check", [0, 1])])
        assert measure_branch_coverage(collector).percent == 100.0
        mcdc = measure_mcdc_coverage(collector)
        assert mcdc.covered == 1
        assert mcdc.total == 2

    def test_full_mcdc(self):
        collector = run_and_collect(COMPOUND, [
            ("check", [1, 1]), ("check", [0, 1]), ("check", [1, 0])])
        assert measure_mcdc_coverage(collector).percent == 100.0

    def test_single_condition_equals_branch(self):
        collector = run_and_collect(SIMPLE, [("f", [1]), ("f", [0])])
        mcdc = measure_mcdc_coverage(collector)
        assert mcdc.total == 1
        assert mcdc.percent == 100.0

    def test_unique_cause_stricter_than_masking(self):
        source = """
        int g(int a, int b, int c) {
          if ((a > 0 && b > 0) || c > 0) {
            return 1;
          }
          return 0;
        }
        """
        # Masking pair for c: (T,T,-)->1 vs ... c short-circuited when
        # a&&b true; craft vectors where masking succeeds.
        vectors = [("g", [1, 1, 0]), ("g", [0, 1, 0]), ("g", [0, 1, 1]),
                   ("g", [1, 0, 0]), ("g", [1, 0, 1])]
        collector = run_and_collect(source, vectors)
        masking = measure_mcdc_coverage(collector, "masking")
        unique = measure_mcdc_coverage(collector, "unique-cause")
        assert masking.covered >= unique.covered

    def test_invalid_variant_rejected(self):
        collector = run_and_collect(COMPOUND, [])
        with pytest.raises(ValueError):
            measure_mcdc_coverage(collector, "bogus")

    def test_ternary_participates(self):
        source = "int f(int x) { return x > 0 ? 1 : 0; }"
        collector = run_and_collect(source, [("f", [1]), ("f", [0])])
        assert measure_mcdc_coverage(collector).percent == 100.0


class TestCollector:
    def test_merge(self):
        program = parse_program(SIMPLE)
        first = CoverageCollector(program)
        second = CoverageCollector(program)
        Interpreter(program, tracer=first).run("f", [1])
        Interpreter(program, tracer=second).run("f", [-1])
        first.merge(second)
        assert measure_branch_coverage(first).percent == 100.0

    def test_merge_rejects_other_program(self):
        first = CoverageCollector(parse_program(SIMPLE))
        second = CoverageCollector(parse_program(SIMPLE))
        with pytest.raises(CoverageError):
            first.merge(second)

    def test_bad_statement_id_rejected(self):
        collector = CoverageCollector(parse_program(SIMPLE))
        with pytest.raises(CoverageError):
            collector.on_statement(10_000)

    def test_hits_by_line(self):
        collector = run_and_collect(SIMPLE, [("f", [1]), ("f", [2])])
        lines = collector.hits_by_line()
        assert max(lines.values()) == 2


class TestRunner:
    def test_vector_expectations(self):
        runner = CoverageRunner(SIMPLE, "s.c")
        outcomes = runner.run_suite([
            TestVector("f", (1,), expected=1),
            TestVector("f", (-1,), expected=2),
        ])
        assert all(outcome.passed for outcome in outcomes)
        assert runner.coverage().statement_percent == 100.0

    def test_failed_expectation_recorded(self):
        runner = CoverageRunner(SIMPLE, "s.c")
        runner.run_vector(TestVector("f", (1,), expected=99))
        assert len(runner.failures) == 1

    def test_error_recorded_not_raised(self):
        runner = CoverageRunner(SIMPLE, "s.c")
        outcome = runner.run_vector(TestVector("missing", ()))
        assert not outcome.passed
        assert "MiniCNameError" in outcome.error

    def test_coverage_accumulates_across_vectors(self):
        runner = CoverageRunner(SIMPLE, "s.c")
        runner.run_vector(TestVector("f", (1,)))
        partial = runner.coverage().branch_percent
        runner.run_vector(TestVector("f", (-1,)))
        assert runner.coverage().branch_percent > partial


class TestExclusion:
    TWO_FUNCTIONS = """
    int used(int x) {
      if (x > 0) {
        return 1;
      }
      return 0;
    }
    int unused(int x) {
      if (x > 3) {
        return 9;
      }
      return 8;
    }
    """

    def test_function_maps_partition(self):
        program = parse_program(self.TWO_FUNCTIONS)
        maps = build_function_maps(program)
        assert len(maps) == 2
        all_statements = set()
        for function_map in maps:
            assert not (all_statements & function_map.statement_ids)
            all_statements |= function_map.statement_ids
        assert len(all_statements) == program.statement_count

    def test_exclusion_raises_coverage(self):
        runner = CoverageRunner(self.TWO_FUNCTIONS, "two.c")
        runner.run_suite([TestVector("used", (1,)),
                          TestVector("used", (-1,))])
        raw = runner.coverage(exclude_uncalled=False)
        filtered = runner.coverage(exclude_uncalled=True)
        assert raw.statement_percent < 100.0
        assert filtered.statement_percent == 100.0
        assert filtered.branch_percent == 100.0

    def test_excluded_names_reported(self):
        runner = CoverageRunner(self.TWO_FUNCTIONS, "two.c")
        runner.run_vector(TestVector("used", (1,)))
        _, _, excluded = exclusion_sets(runner.collector)
        assert excluded == ["unused"]


class TestCampaign:
    def test_averages_and_minima(self):
        runner_a = CoverageRunner(SIMPLE, "a.c")
        runner_a.run_suite([TestVector("f", (1,)), TestVector("f", (0,))])
        runner_b = CoverageRunner(SIMPLE, "b.c")
        runner_b.run_vector(TestVector("f", (1,)))
        campaign = build_campaign([runner_a.coverage(),
                                   runner_b.coverage()])
        assert campaign.average("statement") == pytest.approx(
            (100.0 + runner_b.coverage().statement_percent) / 2)
        assert campaign.minimum("branch") == 50.0

    def test_render_contains_rows(self):
        runner = CoverageRunner(SIMPLE, "a.c")
        runner.run_vector(TestVector("f", (1,)))
        rendered = build_campaign([runner.coverage()]).render()
        assert "a.c" in rendered
        assert "AVERAGE" in rendered
