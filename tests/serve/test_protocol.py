"""Wire protocol: request validation and deterministic encoding."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import (
    VERBS,
    encode_reply,
    error_reply,
    parse_request,
)


class TestParseRequest:
    def test_valid_request_passes_through(self):
        request = parse_request('{"id": 7, "verb": "assess", "path": "x"}')
        assert request == {"id": 7, "verb": "assess", "path": "x"}

    def test_id_is_optional(self):
        assert parse_request('{"verb": "ping"}') == {"verb": "ping"}

    def test_every_advertised_verb_parses(self):
        for verb in VERBS:
            assert parse_request(json.dumps({"verb": verb}))["verb"] == verb

    def test_not_json(self):
        with pytest.raises(ServeError, match="not valid JSON"):
            parse_request("nope{")

    def test_not_an_object(self):
        with pytest.raises(ServeError, match="must be a JSON object"):
            parse_request('["assess"]')

    def test_non_scalar_id(self):
        with pytest.raises(ServeError, match="id must be a JSON scalar"):
            parse_request('{"id": [1], "verb": "ping"}')

    def test_missing_verb(self):
        with pytest.raises(ServeError, match="no verb"):
            parse_request('{"id": 1}')

    def test_unknown_verb(self):
        with pytest.raises(ServeError, match="unknown verb 'frobnicate'"):
            parse_request('{"verb": "frobnicate"}')


class TestEncoding:
    def test_error_reply_shape(self):
        reply = error_reply(3, "boom")
        assert reply == {"id": 3, "ok": False, "degraded": False,
                         "error": "boom"}

    def test_degraded_error_reply(self):
        assert error_reply(None, "x", degraded=True)["degraded"] is True

    def test_encode_is_deterministic(self):
        a = encode_reply({"b": 1, "a": {"d": 2, "c": 3}})
        b = encode_reply({"a": {"c": 3, "d": 2}, "b": 1})
        assert a == b
        assert a == '{"a":{"c":3,"d":2},"b":1}\n'

    def test_encode_round_trips(self):
        reply = {"id": 1, "ok": True, "findings": ["a", "b"]}
        assert json.loads(encode_reply(reply)) == reply
