"""--watch semantics: incremental re-assessment and diff streaming."""

import os

from repro.serve import AssessmentServer, finding_diff, watch_events

from .conftest import CLEAN, GOTO, write


def run_watch(server, root, edits, iterations=None):
    """Drive watch_events with scripted between-poll edits."""
    script = iter(edits)

    def scripted_sleep(_interval):
        try:
            next(script)()
        except StopIteration:
            pass

    # iterations=0 means "until interrupted", so a scripted run always
    # polls at least once past its last edit
    return list(watch_events(
        server, root,
        iterations=(iterations if iterations is not None
                    else max(1, len(edits))),
        interval=0.01, sleep=scripted_sleep))


class TestWatchLoop:
    def test_baseline_event_comes_first(self, tree):
        events = run_watch(AssessmentServer(tree), tree, [])
        assert [event["event"] for event in events] == ["baseline"]
        assert events[0]["iteration"] == 0
        assert events[0]["files"] == 2

    def test_no_change_no_event(self, tree):
        events = run_watch(AssessmentServer(tree), tree,
                           [lambda: None, lambda: None])
        assert len(events) == 1  # baseline only

    def test_edit_streams_update_with_both_diff_layers(self, tree):
        events = run_watch(
            AssessmentServer(tree), tree,
            [lambda: write(tree, "clean.cpp", GOTO + CLEAN)])
        assert [event["event"] for event in events] == \
            ["baseline", "update"]
        update = events[1]
        assert update["delta"]["changed"] == ["clean.cpp"]
        assert "UD9.goto" in update["finding_diff"]["rules_changed"]
        # every streamed finding concerns the edited file (the clean
        # one's old findings moved lines, so they churn; dirty.cpp's
        # untouched findings must not appear)
        assert all("clean.cpp" in finding
                   for finding in update["finding_diff"]["new"])
        assert all("clean.cpp" in finding
                   for finding in update["finding_diff"]["fixed"])
        assert "improved" in update["diff"]  # verdict-level rollup

    def test_update_reuses_the_unchanged_files_cache(self, tree):
        server = AssessmentServer(tree)
        events = run_watch(
            server, tree,
            [lambda: write(tree, "clean.cpp", GOTO + CLEAN)])
        baseline, update = events
        per_file = baseline["cache"]["puts"] // baseline["files"]
        assert update["cache"]["misses"] == per_file
        assert update["cache"]["hits"] == per_file

    def test_identical_rewrite_streams_nothing(self, tree):
        path = os.path.join(tree, "clean.cpp")

        def rewrite_identical():
            write(tree, "clean.cpp", CLEAN)
            stat = os.stat(path)
            os.utime(path, ns=(stat.st_atime_ns,
                               stat.st_mtime_ns + 1_000_000))

        events = run_watch(AssessmentServer(tree), tree,
                           [rewrite_identical])
        assert len(events) == 1

    def test_file_removal_streams_fixed_findings(self, tree):
        events = run_watch(
            AssessmentServer(tree), tree,
            [lambda: os.remove(os.path.join(tree, "dirty.cpp"))])
        update = events[1]
        assert update["delta"]["removed"] == ["dirty.cpp"]
        assert update["finding_diff"]["new"] == []
        assert any("dirty.cpp" in finding
                   for finding in update["finding_diff"]["fixed"])

    def test_new_file_streams_its_findings(self, tree):
        events = run_watch(
            AssessmentServer(tree), tree,
            [lambda: write(tree, "born.cpp", GOTO)])
        update = events[1]
        assert update["delta"]["added"] == ["born.cpp"]
        assert any("born.cpp" in finding
                   for finding in update["finding_diff"]["new"])

    def test_tree_emptying_degrades_the_iteration_not_the_loop(
            self, tmp_path):
        root = tmp_path / "solo"
        root.mkdir()
        write(root, "only.cpp", CLEAN)
        root = str(root)
        server = AssessmentServer(root)
        events = run_watch(
            server, root,
            [lambda: os.remove(os.path.join(root, "only.cpp")),
             lambda: write(root, "only.cpp", GOTO)])
        kinds = [event["event"] for event in events]
        assert kinds == ["baseline", "error", "update"]
        assert events[1]["degraded"] is True
        assert events[2]["degraded"] is False


class TestFindingDiff:
    def test_self_diff_is_empty(self, tree):
        server = AssessmentServer(tree)
        server.assess(tree)
        result = server.results[os.path.abspath(tree)]
        assert finding_diff(result, result) == \
            {"new": [], "fixed": [], "rules_changed": []}

    def test_duplicate_findings_diff_as_multisets(self):
        from types import SimpleNamespace

        from repro.checkers.base import Finding

        def result(*counts):
            finding = Finding(rule="M1.1", message="dup",
                              filename="a.cc", line=3)
            return SimpleNamespace(reports={
                "style": SimpleNamespace(findings=[finding] * counts[0]),
            })

        diff = finding_diff(result(1), result(3))
        # byte-identical findings are a multiset: 1 -> 3 copies means
        # exactly 2 new, not "already present, nothing changed"
        assert len(diff["new"]) == 2
        assert diff["fixed"] == []
        assert diff["rules_changed"] == ["M1.1"]
        shrink = finding_diff(result(3), result(1))
        assert len(shrink["fixed"]) == 2
