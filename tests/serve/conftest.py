"""Shared serve fixtures: tiny on-disk source trees."""

import os

import pytest

CLEAN = "int add(int a, int b) { return a + b; }\n"
GOTO = "int f() { goto end; end: return 1; }\n"


def write(root, relative, text):
    full = os.path.join(str(root), relative)
    os.makedirs(os.path.dirname(full), exist_ok=True)
    with open(full, "w", encoding="utf-8") as handle:
        handle.write(text)
    return full


@pytest.fixture
def tree(tmp_path):
    """A two-file tree: one clean unit, one with violations."""
    root = tmp_path / "tree"
    root.mkdir()
    write(root, "clean.cpp", CLEAN)
    write(root, "dirty.cpp", GOTO)
    return str(root)
