"""TreeWatcher: stat-first polling and the mid-iteration edge races."""

import os

import pytest

from repro.errors import CorpusError
from repro.obs import BufferLog
from repro.serve import TreeWatcher

from .conftest import CLEAN, GOTO, write


def bump_mtime(path):
    """Move a file's mtime without touching its content."""
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestBaselinePoll:
    def test_first_poll_adds_everything(self, tree):
        watcher = TreeWatcher(tree)
        delta = watcher.poll()
        assert delta.added == ["clean.cpp", "dirty.cpp"]
        assert delta.changed == delta.removed == delta.touched == []
        assert watcher.sources["clean.cpp"] == CLEAN
        assert delta.material

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(CorpusError, match="does not exist"):
            TreeWatcher(str(tmp_path / "absent")).poll()

    def test_upper_case_extensions_are_watched(self, tmp_path):
        root = tmp_path / "t"
        root.mkdir()
        write(root, "legacy.CPP", CLEAN)
        watcher = TreeWatcher(str(root))
        assert watcher.poll().added == ["legacy.CPP"]


class TestIncrementalPoll:
    def test_unchanged_tree_is_not_even_reread(self, tree, monkeypatch):
        watcher = TreeWatcher(tree)
        watcher.poll()
        reads = []
        original = TreeWatcher._read
        monkeypatch.setattr(
            TreeWatcher, "_read",
            lambda self, full: reads.append(full) or original(self, full))
        delta = watcher.poll()
        assert not delta.material
        assert reads == []

    def test_content_change_is_changed(self, tree):
        watcher = TreeWatcher(tree)
        watcher.poll()
        write(tree, "clean.cpp", GOTO)
        delta = watcher.poll()
        assert delta.changed == ["clean.cpp"]
        assert delta.added == delta.removed == []
        assert watcher.sources["clean.cpp"] == GOTO

    def test_identical_rewrite_is_touched_not_changed(self, tree):
        watcher = TreeWatcher(tree)
        watcher.poll()
        # Rewrite identical bytes, force the stat to move: the watcher
        # must re-read, notice the digest matches, and not re-emit.
        write(tree, "clean.cpp", CLEAN)
        bump_mtime(os.path.join(tree, "clean.cpp"))
        delta = watcher.poll()
        assert delta.touched == ["clean.cpp"]
        assert not delta.material

    def test_touched_stat_is_remembered(self, tree):
        watcher = TreeWatcher(tree)
        watcher.poll()
        bump_mtime(os.path.join(tree, "clean.cpp"))
        watcher.poll()
        assert not watcher.poll().touched  # new stat was recorded

    def test_new_file_is_added(self, tree):
        watcher = TreeWatcher(tree)
        watcher.poll()
        write(tree, "sub/new.cu", CLEAN)
        delta = watcher.poll()
        assert delta.added == ["sub/new.cu"]
        assert "sub/new.cu" in watcher.sources

    def test_deleted_file_is_removed(self, tree):
        watcher = TreeWatcher(tree)
        watcher.poll()
        os.remove(os.path.join(tree, "dirty.cpp"))
        delta = watcher.poll()
        assert delta.removed == ["dirty.cpp"]
        assert "dirty.cpp" not in watcher.sources


class TestEdgeRaces:
    def test_deleted_mid_iteration_is_removed(self, tree, monkeypatch):
        """The walk saw the name, the read did not: still a removal."""
        watcher = TreeWatcher(tree)
        watcher.poll()
        write(tree, "dirty.cpp", GOTO * 2)

        def racing_read(self, full):
            if full.endswith("dirty.cpp"):
                os.remove(full)
                raise FileNotFoundError(2, "gone", full)
            return original(self, full)

        original = TreeWatcher._read
        monkeypatch.setattr(TreeWatcher, "_read", racing_read)
        delta = watcher.poll()
        assert delta.removed == ["dirty.cpp"]
        assert delta.changed == []
        assert "dirty.cpp" not in watcher.sources

    def test_unreadable_keeps_last_known_content(self, tree, monkeypatch):
        log = BufferLog()
        watcher = TreeWatcher(tree, log=log)
        watcher.poll()
        write(tree, "dirty.cpp", GOTO * 2)

        def denied_read(self, full):
            if full.endswith("dirty.cpp"):
                raise PermissionError(13, "denied", full)
            return original(self, full)

        original = TreeWatcher._read
        monkeypatch.setattr(TreeWatcher, "_read", denied_read)
        delta = watcher.poll()
        assert delta.skipped == ["dirty.cpp"]
        assert not delta.material
        assert watcher.sources["dirty.cpp"] == GOTO  # stale, not gone
        assert watcher.skipped_total == 1
        assert any(event["event"] == "parse.skipped_unreadable"
                   for event in log.events)

    def test_unreadable_new_file_is_not_tracked(self, tree, monkeypatch):
        watcher = TreeWatcher(tree)
        watcher.poll()
        write(tree, "new.cpp", CLEAN)

        def denied_read(self, full):
            if full.endswith("new.cpp"):
                raise PermissionError(13, "denied", full)
            return original(self, full)

        original = TreeWatcher._read
        monkeypatch.setattr(TreeWatcher, "_read", denied_read)
        delta = watcher.poll()
        assert delta.skipped == ["new.cpp"]
        assert "new.cpp" not in watcher.sources
        # the existing files must not be reported removed
        assert delta.removed == []
