"""``repro-serve`` CLI: argument validation, stdio mode, watch mode."""

import io
import json
import os

import pytest

from repro.serve.cli import build_parser, main

from .conftest import CLEAN, GOTO, write


def run_stdio_session(monkeypatch, capsys, argv, requests):
    stdin = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests))
    monkeypatch.setattr("sys.stdin", stdin)
    code = main(argv)
    out = capsys.readouterr().out
    return code, [json.loads(line) for line in out.splitlines()]


class TestArgumentValidation:
    def test_requires_a_tree(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_watch_and_tcp_conflict(self, tree, capsys):
        assert main([tree, "--watch", tree, "--tcp", "h:1"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_store_and_cache_conflict(self, tree, capsys):
        assert main([tree, "--store", "s", "--cache", "c"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [
        ("--interval", "0"),
        ("--iterations", "-1"),
        ("--task-timeout", "0"),
    ])
    def test_rejects_nonpositive_numbers(self, tree, capsys, flags):
        assert main([tree, *flags]) == 2

    def test_bad_tcp_endpoint(self, tree, capsys):
        assert main([tree, "--tcp", "9026"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_unknown_rule_glob(self, tree, capsys):
        assert main([tree, "--enable", "NOPE*"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err

    def test_log_level_requires_log_json(self, tree, capsys):
        assert main([tree, "--log-level", "debug"]) == 2

    def test_parser_defaults(self):
        args = build_parser().parse_args(["src"])
        assert args.interval == 2.0
        assert args.iterations == 0
        assert args.jobs == 1


class TestStdioMode:
    def test_request_reply_session(self, tree, monkeypatch, capsys):
        code, replies = run_stdio_session(
            monkeypatch, capsys, [tree],
            [{"id": 1, "verb": "assess"},
             {"id": 2, "verb": "assess"},
             {"id": 3, "verb": "shutdown"}])
        assert code == 0
        assert len(replies) == 3
        assert replies[0]["ok"] and replies[1]["ok"]
        assert replies[1]["cache"]["misses"] == 0
        assert replies[2]["closing"] is True

    def test_eof_ends_the_session(self, tree, monkeypatch, capsys):
        code, replies = run_stdio_session(
            monkeypatch, capsys, [tree], [{"id": 1, "verb": "ping"}])
        assert code == 0
        assert replies[0]["pong"] is True


class TestWatchMode:
    def test_single_iteration_emits_baseline(self, tree, capsys):
        code = main([tree, "--watch", tree,
                     "--iterations", "1", "--interval", "0.01"])
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        assert code == 0
        assert events[0]["event"] == "baseline"
        assert events[0]["total_findings"] > 0

    def test_watch_event_log(self, tree, tmp_path, capsys):
        log = str(tmp_path / "events.jsonl")
        assert main([tree, "--watch", tree, "--iterations", "1",
                     "--interval", "0.01", "--log-json", log]) == 0
        capsys.readouterr()
        assert os.path.exists(log)

    def test_missing_watch_tree_exits_2(self, tmp_path, capsys):
        absent = str(tmp_path / "absent")
        assert main([absent, "--watch", absent,
                     "--iterations", "1", "--interval", "0.01"]) == 2
        assert "does not exist" in capsys.readouterr().err
