"""AssessmentServer: verbs, hot-cache guarantees, containment boundary."""

import io
import json
import os
import pickle

import pytest

from repro.core import MemoryCache, ResultCache
from repro.rules import REGISTRY, RuleProfile
from repro.serve import AssessmentServer, encode_reply, run_stdio
from repro.store import Store
from repro.testing import Fault, FaultPlan, FaultyChecker

from .conftest import CLEAN, GOTO, write

#: Reply keys that legitimately differ between two identical assesses.
VOLATILE = ("seconds", "cache", "run", "id")


def stable(reply):
    return encode_reply({key: value for key, value in reply.items()
                         if key not in VOLATILE})


def assess(server, **extra):
    reply = server.handle_line(json.dumps({"id": 1, "verb": "assess",
                                           **extra}))
    assert reply["ok"], reply
    return reply


class TestAssessVerb:
    def test_first_assess_reports_findings(self, tree):
        reply = assess(AssessmentServer(tree))
        assert reply["files"] == 2
        assert reply["units"] == 2
        assert any("UD9.goto" in finding
                   for finding in reply["findings"]["unit_design"])
        assert reply["degraded"] is False

    def test_repeat_assess_is_byte_identical_and_all_hits(self, tree):
        """Acceptance pin: an unchanged tree recomputes *nothing* and
        replies byte-identically."""
        server = AssessmentServer(tree)
        first = assess(server)
        second = assess(server)
        assert stable(first) == stable(second)
        assert second["cache"]["misses"] == 0
        assert second["cache"]["puts"] == 0
        assert second["cache"]["hits"] == first["cache"]["puts"]

    def test_single_file_edit_recomputes_only_that_file(self, tree):
        """Acceptance pin: one edited file means exactly one parse and
        one check bundle recomputed; the other file stays cached."""
        server = AssessmentServer(tree)
        first = assess(server)
        per_file = first["cache"]["puts"] // first["files"]
        write(tree, "clean.cpp", GOTO + CLEAN)
        third = assess(server)
        assert third["cache"]["misses"] == per_file
        assert third["cache"]["hits"] == per_file
        assert any("UD9.goto" in finding
                   for finding in third["findings"]["unit_design"])

    def test_explicit_path_overrides_default_root(self, tree, tmp_path):
        other = tmp_path / "other"
        other.mkdir()
        write(other, "only.cpp", CLEAN)
        server = AssessmentServer(tree)
        reply = assess(server, path=str(other))
        assert reply["files"] == 1

    def test_no_root_anywhere_is_a_request_error(self, tree):
        server = AssessmentServer()  # no default root
        reply = server.handle_line('{"verb": "assess"}')
        assert reply["ok"] is False
        assert "no tree to assess" in reply["error"]

    def test_empty_tree_is_a_request_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        server = AssessmentServer(str(empty))
        reply = server.handle_line('{"verb": "assess"}')
        assert reply["ok"] is False
        assert "no C/C++/CUDA sources" in reply["error"]

    def test_profile_shapes_served_findings(self, tree):
        profile = RuleProfile(disable=("UD9.*",))
        server = AssessmentServer(tree, profile=profile)
        reply = assess(server)
        assert not any("UD9.goto" in finding
                       for findings in reply["findings"].values()
                       for finding in findings)


class TestContainment:
    def test_checker_crash_degrades_one_reply_not_the_daemon(self, tree):
        plan = FaultPlan(faults=[Fault("raise", path="dirty.cpp")])
        server = AssessmentServer(
            tree, extra_checkers=(FaultyChecker(plan),))
        reply = assess(server)
        assert reply["degraded"] is True
        assert any("fault_injector" in note
                   for note in reply["degradations"])
        # the plan is spent: the daemon keeps serving, now cleanly
        write(tree, "dirty.cpp", GOTO * 2)
        again = assess(server)
        assert again["degraded"] is False
        stats = server.handle_line('{"verb": "stats"}')
        assert stats["degraded_replies"] == 1
        assert stats["requests"] == 3

    def test_corrupt_cache_entry_degrades_nothing_fatal(self, tree,
                                                        tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        server = AssessmentServer(tree, cache=cache)
        first = assess(server)
        # rot every on-disk entry, then force re-reads
        for _, path in cache.entries():
            with open(path, "wb") as handle:
                handle.write(b"not a pickle")
        second = assess(server)
        assert second["ok"] is True
        assert second["cache"]["corrupt_entries"] > 0
        assert stable(first) == stable(second)  # recomputed, same answer

    def test_unexpected_server_bug_is_an_error_reply(self, tree,
                                                     monkeypatch):
        server = AssessmentServer(tree)

        def explode(self, root, refresh=True):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(AssessmentServer, "assess", explode)
        reply = server.handle_line('{"id": 4, "verb": "assess"}')
        assert reply["ok"] is False
        assert reply["degraded"] is True
        assert "wires crossed" in reply["error"]
        # daemon is still up
        assert server.handle_line('{"verb": "ping"}')["ok"] is True

    def test_malformed_line_is_an_error_reply(self, tree):
        server = AssessmentServer(tree)
        reply = server.handle_line("}{")
        assert reply["ok"] is False
        assert server.handle_line('{"verb": "ping"}')["pong"] is True


class TestDiffVerb:
    def test_diff_needs_two_assessments(self, tree):
        server = AssessmentServer(tree)
        reply = server.handle_line('{"verb": "diff"}')
        assert reply["ok"] is False
        assert "nothing assessed yet" in reply["error"]
        assess(server)
        reply = server.handle_line('{"verb": "diff"}')
        assert reply["ok"] is False
        assert "needs two" in reply["error"]

    def test_diff_names_exactly_the_changed_rules(self, tree):
        server = AssessmentServer(tree)
        assess(server)
        write(tree, "clean.cpp",
              "int g() { int x; goto end; end: return x; }\n")
        assess(server)
        reply = server.handle_line('{"verb": "diff"}')
        assert reply["ok"] is True
        changed = reply["findings"]["rules_changed"]
        assert "UD9.goto" in changed
        assert "UD3.uninitialized" in changed
        # every streamed finding concerns the edited file only
        assert all("clean.cpp" in finding
                   for finding in reply["findings"]["new"])
        assert all("clean.cpp" in finding
                   for finding in reply["findings"]["fixed"])
        assert {"before", "after", "reduction"} <= \
            set(reply["gap_reduction"])

    def test_identical_reassess_diffs_empty(self, tree):
        server = AssessmentServer(tree)
        assess(server)
        assess(server)
        reply = server.handle_line('{"verb": "diff"}')
        assert reply["findings"] == {"new": [], "fixed": [],
                                     "rules_changed": []}
        assert reply["verdicts"]["transitions"] == []

    def test_diff_against_baseline_document(self, tree, tmp_path):
        server = AssessmentServer(tree)
        assess(server)
        document = server.results[os.path.abspath(tree)].to_dict()
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        reply = server.handle_line(json.dumps(
            {"verb": "diff", "baseline": str(baseline)}))
        assert reply["ok"] is True
        assert reply["verdicts"]["improved"] == 0
        assert reply["verdicts"]["regressed"] == 0
        assert reply["gap_reduction"]["reduction"] == 0

    def test_bad_baseline_is_a_request_error(self, tree, tmp_path):
        server = AssessmentServer(tree)
        assess(server)
        reply = server.handle_line(json.dumps(
            {"verb": "diff", "baseline": str(tmp_path / "absent.json")}))
        assert reply["ok"] is False


class TestOtherVerbs:
    def test_ping(self, tree):
        reply = AssessmentServer(tree).handle_line('{"verb": "ping"}')
        assert reply["pong"] is True

    def test_rules_lists_the_registry(self, tree):
        reply = AssessmentServer(tree).handle_line('{"verb": "rules"}')
        assert reply["count"] == len(REGISTRY)
        assert all(rule["enabled"] for rule in reply["rules"])

    def test_rules_reflect_profile(self, tree):
        server = AssessmentServer(
            tree, profile=RuleProfile(disable=("UD9.*",)))
        reply = server.handle_line('{"verb": "rules"}')
        disabled = [rule["id"] for rule in reply["rules"]
                    if not rule["enabled"]]
        assert disabled and all(r.startswith("UD9.") for r in disabled)

    def test_stats_counts_and_cache_backend(self, tree):
        server = AssessmentServer(tree)
        assess(server)
        reply = server.handle_line('{"verb": "stats"}')
        assert reply["assessments"] == 1
        assert reply["cache"]["backend"] == "MemoryCache"
        assert reply["roots"][os.path.abspath(tree)]["files"] == 2


class TestStoreBackedServing:
    def test_each_assess_appends_a_run_record(self, tree, tmp_path):
        store = Store(str(tmp_path / "store"))
        server = AssessmentServer(tree, store=store)
        first = assess(server)
        second = assess(server)
        assert "run" in first and "run" in second
        records = list(store.history().records())
        assert [record.run_id for record in records] == \
            [first["run"], second["run"]]
        # per-request deltas, not process-lifetime totals
        assert records[0].cache["misses"] > 0
        assert records[1].cache["misses"] == 0
        assert records[1].cache["hits"] == records[0].cache["puts"]

    def test_ledger_dir_serving(self, tree, tmp_path):
        from repro.obs import RunLedger
        ledger_dir = str(tmp_path / "ledger")
        server = AssessmentServer(tree, ledger_dir=ledger_dir)
        assess(server)
        assert len(list(RunLedger(ledger_dir).records())) == 1


class TestStdioLoop:
    def test_serves_until_shutdown(self, tree):
        server = AssessmentServer(tree)
        stdin = io.StringIO(
            '{"id": 1, "verb": "ping"}\n'
            "\n"  # blank lines are ignored
            '{"id": 2, "verb": "shutdown"}\n'
            '{"id": 3, "verb": "ping"}\n')
        stdout = io.StringIO()
        assert run_stdio(server, stdin, stdout) == 2
        lines = stdout.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["pong"] is True
        assert json.loads(lines[1])["closing"] is True
