"""Tests for LOC counting, complexity bands, and module aggregation."""

import pytest

from repro.lang import parse_translation_unit, tokenize
from repro.metrics import (
    ComplexityBand,
    FIGURE3_THRESHOLDS,
    LineCounts,
    band_histogram,
    count_lines,
    count_over_thresholds,
    figure3_rows,
    measure_module,
    summarize_unit,
    summarize_units,
    total_moderate_or_higher,
)


class TestLineCounts:
    def count(self, source):
        return count_lines(source, tokenize(source, strict=False))

    def test_empty_file(self):
        counts = self.count("")
        assert counts.total == 0
        assert counts.code == 0

    def test_code_comment_blank_partition(self):
        source = "int x;\n\n// comment\nint y;  // trailing\n"
        counts = self.count(source)
        assert counts.total == 4
        assert counts.code == 2
        assert counts.comment == 2
        assert counts.blank == 1

    def test_multiline_comment_spans(self):
        counts = self.count("/* a\n b\n c */\n")
        assert counts.comment == 3
        assert counts.code == 0

    def test_preprocessor_lines(self):
        counts = self.count("#include <x>\n#define Y 1\nint z;\n")
        assert counts.preprocessor == 2
        assert counts.code == 1

    def test_no_trailing_newline_counts_last_line(self):
        counts = self.count("int x;")
        assert counts.total == 1

    def test_comment_density(self):
        counts = LineCounts(total=10, code=5, comment=10, blank=0,
                            preprocessor=0)
        assert counts.comment_density == 2.0

    def test_addition(self):
        a = LineCounts(10, 5, 3, 2, 1)
        b = LineCounts(20, 10, 6, 4, 2)
        combined = a + b
        assert combined.total == 30
        assert combined.code == 15


class TestBands:
    @pytest.mark.parametrize("value,band", [
        (1, ComplexityBand.LOW), (10, ComplexityBand.LOW),
        (11, ComplexityBand.MODERATE), (20, ComplexityBand.MODERATE),
        (21, ComplexityBand.RISKY), (50, ComplexityBand.RISKY),
        (51, ComplexityBand.UNSTABLE), (500, ComplexityBand.UNSTABLE),
    ])
    def test_classification(self, value, band):
        assert ComplexityBand.classify(value) is band

    def test_invalid_complexity_rejected(self):
        with pytest.raises(ValueError):
            ComplexityBand.classify(0)

    def test_exceeds_low(self):
        assert not ComplexityBand.LOW.exceeds_low
        assert ComplexityBand.MODERATE.exceeds_low

    def test_histogram(self):
        histogram = band_histogram([1, 5, 12, 25, 60])
        assert histogram[ComplexityBand.LOW] == 2
        assert histogram[ComplexityBand.MODERATE] == 1
        assert histogram[ComplexityBand.RISKY] == 1
        assert histogram[ComplexityBand.UNSTABLE] == 1

    def test_threshold_counting_is_strict(self):
        counts = count_over_thresholds([5, 10, 11, 20, 21], [10, 20])
        assert counts[10] == 3  # 11, 20 and 21 (strictly greater than 10)
        assert counts[20] == 1  # 21 only

    def test_default_thresholds(self):
        assert FIGURE3_THRESHOLDS == [5, 10, 20, 50]


class TestComplexitySummary:
    SOURCE = """
    void simple() { }
    void branchy(int x) {
      if (x > 0) { }
      if (x > 1) { }
      if (x > 2) { }
      if (x > 3) { }
      if (x > 4) { }
      if (x > 5) { }
      if (x > 6) { }
      if (x > 7) { }
      if (x > 8) { }
      if (x > 9) { }
      if (x > 10) { }
    }
    """

    def test_summarize_unit(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        summary = summarize_unit(unit)
        assert summary.function_count == 2
        assert summary.max_complexity == 12
        assert summary.moderate_or_higher == 1

    def test_worst_ordering(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        worst = summarize_unit(unit).worst(1)
        assert worst[0].name == "branchy"

    def test_mean(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        assert summarize_unit(unit).mean_complexity == (1 + 12) / 2

    def test_empty_summary(self):
        summary = summarize_units([])
        assert summary.function_count == 0
        assert summary.max_complexity == 0
        assert summary.mean_complexity == 0.0


class TestModuleMetrics:
    def test_measure_module_and_figure3(self):
        sources = {
            "m/a.cc": "void f(int x) { if (x) { } }\nint g_state = 0;\n",
            "m/b.cc": "void g() { }\nclass C { };\n",
        }
        units = [parse_translation_unit(text, path)
                 for path, text in sources.items()]
        module = measure_module("m", sources, units)
        assert module.file_count == 2
        assert module.function_count == 2
        assert module.class_count == 1
        assert module.global_count == 1
        assert module.loc > 0

        rows = figure3_rows([module])
        assert rows[0]["module"] == "m"
        assert rows[0]["functions"] == 2
        assert rows[0]["cc>10"] == 0

    def test_total_moderate_or_higher(self, small_corpus):
        from repro.lang import parse_translation_unit as parse
        units_by_module = {}
        sources = small_corpus.sources()
        for path, text in sources.items():
            module = path.split("/")[0]
            units_by_module.setdefault(module, []).append(
                parse(text, path))
        modules = [measure_module(name, sources, units)
                   for name, units in units_by_module.items()]
        expected = small_corpus.spec.expected_over_ten
        assert total_moderate_or_higher(modules) == expected
