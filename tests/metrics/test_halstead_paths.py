"""Tests for Halstead metrics, maintainability index, and NPATH."""

import pytest

from repro.lang import parse_translation_unit, tokenize
from repro.lang.minic import parse_program
from repro.metrics import (
    maintainability_index,
    measure_function,
    measure_tokens,
    npath_function,
    npath_program,
    unit_maintainability,
    wcet_enumeration_cost,
)


class TestHalstead:
    def test_empty_span(self):
        metrics = measure_tokens([])
        assert metrics.length == 0
        assert metrics.volume == 0.0
        assert metrics.difficulty == 0.0

    def test_simple_expression(self):
        # a = b + c : operators {=, +}, operands {a, b, c}
        metrics = measure_tokens(tokenize("a = b + c;"))
        assert metrics.distinct_operators == 2
        assert metrics.distinct_operands == 3
        assert metrics.total_operators == 2
        assert metrics.total_operands == 3

    def test_repeated_operands_counted(self):
        metrics = measure_tokens(tokenize("x = x * x;"))
        assert metrics.distinct_operands == 1
        assert metrics.total_operands == 3

    def test_volume_grows_with_length(self):
        small = measure_tokens(tokenize("a = b + c;"))
        large = measure_tokens(tokenize("a = b + c; d = e * f; g = a - d;"))
        assert large.volume > small.volume

    def test_syntactic_punctuation_excluded(self):
        metrics = measure_tokens(tokenize("f(a, b);"))
        # '(' ')' ',' ';' are syntactic; no operators remain.
        assert metrics.distinct_operators == 0

    def test_function_measurement(self):
        unit = parse_translation_unit(
            "int f(int a, int b) { return a + b * a; }")
        metrics = measure_function(unit, unit.function("f"))
        assert metrics.total_operands >= 3
        assert metrics.volume > 0

    def test_estimated_bugs_scales(self):
        unit = parse_translation_unit(
            "int f(int a) { return a + a + a + a + a + a + a; }")
        metrics = measure_function(unit, unit.function("f"))
        assert metrics.estimated_bugs == pytest.approx(
            metrics.volume / 3000.0)


class TestMaintainabilityIndex:
    def test_bounds(self):
        assert maintainability_index(0.0, 1, 0) == 100.0
        assert 0.0 <= maintainability_index(10_000.0, 60, 500) <= 100.0

    def test_monotone_in_complexity(self):
        low = maintainability_index(100.0, 2, 20)
        high = maintainability_index(100.0, 40, 20)
        assert low > high

    def test_monotone_in_size(self):
        small = maintainability_index(100.0, 5, 10)
        big = maintainability_index(100.0, 5, 1000)
        assert small > big

    def test_unit_records(self):
        unit = parse_translation_unit(
            "int f(int a) { if (a) { return 1; } return 0; }\n"
            "void g() { }")
        records = unit_maintainability(unit)
        assert len(records) == 2
        for record in records:
            assert 0.0 <= record.index <= 100.0


class TestNpath:
    def run_npath(self, body):
        program = parse_program(f"int f(int a, int b, int c) {{ {body} }}")
        return npath_function(program.functions[0])

    def test_straight_line_is_one(self):
        assert self.run_npath("int x = a; return x;") == 1

    def test_single_if(self):
        assert self.run_npath("if (a) { b = 1; } return b;") == 2

    def test_if_else(self):
        assert self.run_npath(
            "if (a) { b = 1; } else { b = 2; } return b;") == 2

    def test_sequential_ifs_multiply(self):
        body = "if (a) { b = 1; } if (b) { c = 1; } if (c) { a = 1; } " \
               "return a;"
        assert self.run_npath(body) == 8  # 2 * 2 * 2

    def test_nested_ifs_add_one(self):
        assert self.run_npath(
            "if (a) { if (b) { c = 1; } } return c;") == 3

    def test_loop_adds_skip_path(self):
        assert self.run_npath(
            "while (a > 0) { a = a - 1; } return a;") == 2

    def test_switch_sums_cases(self):
        body = ("switch (a) { case 0: b = 1; break; "
                "case 1: b = 2; break; default: b = 3; } return b;")
        assert self.run_npath(body) == 3

    def test_switch_without_default_adds_skip(self):
        body = "switch (a) { case 0: b = 1; break; } return b;"
        assert self.run_npath(body) == 2

    def test_logical_operator_adds_path(self):
        with_and = self.run_npath("if (a > 0 && b > 0) { c = 1; } return c;")
        plain = self.run_npath("if (a > 0) { c = 1; } return c;")
        assert with_and > plain

    def test_ternary_counts(self):
        assert self.run_npath("return a > 0 ? b : c;") == 2

    def test_npath_dwarfs_cyclomatic(self):
        """The paper's WCET argument: sequential decisions explode paths
        while cyclomatic complexity grows linearly."""
        from repro.lang import parse_translation_unit
        clauses = " ".join(f"if (a > {i}) {{ b += {i}; }}"
                           for i in range(12))
        source = f"int f(int a, int b) {{ {clauses} return b; }}"
        npath = npath_program(parse_program(source))["f"]
        fuzzy = parse_translation_unit(source).function("f")
        assert fuzzy.cyclomatic_complexity == 13
        assert npath == 2 ** 12

    def test_wcet_cost_proxy(self):
        program = parse_program(
            "int f(int a) { if (a) { return 1; } return 0; }")
        assert wcet_enumeration_cost(program, paths_per_second=1.0) \
            == pytest.approx(2.0)
