"""Tests for the assessment pipeline and CLI."""

import json

import pytest

from repro.core import AssessmentPipeline, PipelineConfig, assess_sources
from repro.core.cli import main
from repro.iso26262 import Verdict

APOLLO_LIKE = {
    "perception/detector.cc": """
#include <cstdio>
#include "perception/types.h"
int g_frames = 0;
float Detect(float* data, int n) {
  float total = 0.0f;
  int raw;
  for (int i = 0; i < n; i++) {
    if (data[i] > 0.5f && i % 2 == 0) {
      total += data[i];
    }
  }
  if (total > 100.0f) {
    return 100.0f;
  }
  return total;
}
""",
    "perception/kernel.cu": """
__global__ void scale(float *out, float *in, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * 2.0f;
  }
}
void launch(float *out, float *in, int n) {
  float *d_out;
  cudaMalloc((void**)&d_out, n * 4);
  scale<<<1, 32>>>(d_out, in, n);
  cudaFree(d_out);
}
""",
    "control/controller.cc": """
int Actuate(int command) {
  int applied = (int)(command * 1.5f);
  return applied;
}
""",
}


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return assess_sources(APOLLO_LIKE)

    def test_unit_count(self, result):
        assert result.unit_count == 3

    def test_modules_discovered(self, result):
        assert {module.name for module in result.modules} == \
            {"perception", "control"}

    def test_all_tables_assessed(self, result):
        assert set(result.tables) == {"modeling_coding",
                                      "architectural_design",
                                      "unit_design"}

    def test_all_checkers_ran(self, result):
        assert set(result.reports) == {
            "language_subset", "casts", "defensive", "globals", "naming",
            "style", "unit_design", "architecture", "gpu_subset"}

    def test_gpu_detected(self, result):
        item = result.evidence.get("language_subset")
        assert item.stat("gpu_functions") == 1

    def test_verdict_for_language_subset(self, result):
        table = result.tables["modeling_coding"]
        assert table.assessment("language_subsets").verdict \
            is Verdict.NON_COMPLIANT

    def test_observations_generated(self, result):
        numbers = {observation.number
                   for observation in result.observations}
        assert 3 in numbers  # GPU code exists -> Observation 3

    def test_summary_renders(self, result):
        summary = result.render_summary()
        assert "perception" in summary
        assert "Table 1" in summary
        assert "Observation" in summary

    def test_to_dict_is_json_serializable(self, result):
        payload = json.dumps(result.to_dict())
        decoded = json.loads(payload)
        assert decoded["unit_count"] == 3

    def test_malformed_file_still_analyzed(self):
        # The fuzzy layer lexes leniently, so even an unterminated string
        # does not lose the translation unit.
        sources = dict(APOLLO_LIKE)
        sources["broken/unclosed.cc"] = 'const char* s = "never closed;\n'
        result = assess_sources(sources)
        assert result.unparseable == []
        assert result.unit_count == 4

    def test_unparseable_file_recorded(self, monkeypatch):
        from repro.core import pipeline as pipeline_module
        from repro.errors import ParseError
        real = pipeline_module.parse_translation_unit

        def flaky(source, path):
            if path.startswith("broken/"):
                raise ParseError("boom", path, 1, 1)
            return real(source, path)

        monkeypatch.setattr(pipeline_module, "parse_translation_unit",
                            flaky)
        sources = dict(APOLLO_LIKE)
        sources["broken/poison.cc"] = "int x;\n"
        result = assess_sources(sources)
        assert result.unparseable == ["broken/poison.cc"]
        assert result.unit_count == 3

    def test_strict_mode_raises_on_unparseable(self, monkeypatch):
        from repro.core import pipeline as pipeline_module
        from repro.errors import ParseError

        def always_fail(source, path):
            raise ParseError("boom", path, 1, 1)

        monkeypatch.setattr(pipeline_module, "parse_translation_unit",
                            always_fail)
        config = PipelineConfig(skip_unparseable=False)
        with pytest.raises(ParseError):
            AssessmentPipeline(config).run({"a.cc": "int x;\n"})

    def test_empty_codebase(self):
        result = assess_sources({})
        assert result.unit_count == 0
        assert result.total_loc == 0

    def test_custom_module_mapper(self):
        config = PipelineConfig(module_of=lambda path: "single")
        result = AssessmentPipeline(config).run(APOLLO_LIKE)
        assert [module.name for module in result.modules] == ["single"]


class TestCli:
    def test_assess_tree(self, tmp_path, capsys):
        for path, source in APOLLO_LIKE.items():
            target = tmp_path / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        exit_code = main([str(tmp_path)])
        assert exit_code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_corpus_mode_with_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        exit_code = main(["--corpus", "0.02", "--json", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["moderate_or_higher"] > 0

    def test_markdown_and_plan_flags(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        exit_code = main(["--corpus", "0.02", "--plan",
                          "--markdown", str(out)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Remediation plan" in captured
        assert out.read_text().startswith("# ISO 26262-6")

    def test_empty_tree_errors(self, tmp_path):
        assert main([str(tmp_path)]) == 2

    def test_no_arguments_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestScaledCorpusAssessment:
    """End-to-end on the shared small corpus (see conftest)."""

    def test_cc_over_10_matches_spec(self, small_corpus, small_assessment):
        assert small_assessment.moderate_or_higher == \
            small_corpus.spec.expected_over_ten

    def test_loc_scales(self, small_assessment):
        assert small_assessment.total_loc > 5000

    def test_observation_1_supported(self, small_assessment):
        observation = next(o for o in small_assessment.observations
                           if o.number == 1)
        assert observation.supported

    def test_style_and_naming_compliant(self, small_assessment):
        table = small_assessment.tables["modeling_coding"]
        assert table.assessment("style_guides").verdict \
            is Verdict.COMPLIANT
        assert table.assessment("naming_conventions").verdict \
            is Verdict.COMPLIANT

    def test_core_gaps_non_compliant(self, small_assessment):
        table = small_assessment.tables["modeling_coding"]
        for key in ("low_complexity", "language_subsets", "strong_typing",
                    "defensive_implementation"):
            assert table.assessment(key).verdict is Verdict.NON_COMPLIANT, key

    def test_unit_design_gaps(self, small_assessment):
        table = small_assessment.tables["unit_design"]
        assert table.assessment("single_entry_exit").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("no_dynamic_objects").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("no_unconditional_jumps").verdict \
            is Verdict.NON_COMPLIANT


class TestCliExperiments:
    def test_experiments_flag(self, capsys):
        exit_code = main(["--corpus", "0.02", "--experiments"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Figure 5" in captured
        assert "Figure 7" in captured
        assert "CUTLASS" in captured


class TestCorpusDescribe:
    def test_describe(self, small_corpus):
        description = small_corpus.describe()
        assert "corpus:" in description
        assert "perception" in description
        assert "cc>10 target" in description


class TestCliErrors:
    def test_nonexistent_path_clean_error(self, capsys):
        exit_code = main(["/no/such/tree/anywhere"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "cannot read source tree" in captured.err
        assert "Traceback" not in captured.err

    def test_file_path_clean_error(self, tmp_path, capsys):
        target = tmp_path / "single.cc"
        target.write_text("int x;\n")
        exit_code = main([str(target)])
        assert exit_code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_bad_corpus_scale_clean_error(self, capsys):
        exit_code = main(["--corpus", "-1"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "cannot generate corpus" in captured.err
        assert "Traceback" not in captured.err

    def test_unwritable_json_clean_error(self, tmp_path, capsys):
        target = tmp_path / "missing-dir" / "report.json"
        exit_code = main(["--corpus", "0.02", "--json", str(target)])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "cannot write JSON report" in captured.err
        assert "Traceback" not in captured.err

    def test_unwritable_markdown_clean_error(self, tmp_path, capsys):
        target = tmp_path / "missing-dir" / "report.md"
        exit_code = main(["--corpus", "0.02", "--markdown", str(target)])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "cannot write Markdown report" in captured.err
        assert "Traceback" not in captured.err

    def test_non_utf8_source_assessed_not_crashed(self, tmp_path, capsys):
        (tmp_path / "control").mkdir()
        (tmp_path / "control" / "latin1.cc").write_bytes(
            b"// comentario t\xe9cnico\nint Actuate(int c) { return c; }\n")
        (tmp_path / "control" / "clean.cc").write_text(
            "int Other(int c) { return c; }\n")
        exit_code = main([str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "translation units analyzed : 2" in out


class TestCliVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-assess ")
        assert out.strip().split()[-1][0].isdigit()


class TestCliTelemetry:
    def test_trace_prints_span_tree(self, capsys):
        exit_code = main(["--corpus", "0.02", "--trace"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert "parse_file" in out
        for checker in ("language_subset", "casts", "defensive",
                        "globals", "naming", "style", "unit_design",
                        "architecture", "gpu_subset"):
            assert f"checker name={checker}" in out
        assert "compliance" in out
        assert "observations" in out

    def test_profile_prints_top_spans(self, capsys):
        exit_code = main(["--corpus", "0.02", "--profile", "--top", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Top 5 spans by self time" in out
        assert "share" in out

    def test_metrics_json_document(self, tmp_path, capsys):
        target = tmp_path / "telemetry.json"
        exit_code = main(["--corpus", "0.02",
                          "--metrics-json", str(target)])
        assert exit_code == 0
        document = json.loads(target.read_text())
        counters = document["metrics"]["counters"]
        assert counters["pipeline.units_parsed"] > 0
        assert "pipeline.parse_failures" in counters
        assert any(key.startswith("checker.findings")
                   for key in counters)
        assert document["spans"][0]["name"] == "pipeline"
        assert document["traceEvents"]

    def test_no_flags_prints_no_telemetry(self, capsys):
        exit_code = main(["--corpus", "0.02"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Top" not in out
        assert "parse_file" not in out
