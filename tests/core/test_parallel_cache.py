"""Tests for the parallel + incremental execution engine.

The engine's contract is exact: any combination of ``jobs``,
``executor``, and cache temperature must produce an assessment
identical to the serial, cold-cache run.  These tests pin that down on
the synthetic Apollo corpus, plus the cache and pool primitives.
"""

import pickle

import pytest

from repro.core import (
    AssessmentPipeline,
    CACHE_MISS,
    PipelineConfig,
    ResultCache,
    chunk_evenly,
    worker_count,
)
from repro.core.cache import CHECK_TAG, PARSE_TAG
from repro.core.cli import main
from repro.core.parallel import split_checkers
from repro.checkers.base import Checker
from repro.checkers.style import StyleChecker, StyleConfig
from repro.corpus import apollo_spec, generate_corpus
from repro.errors import ConfigError
from repro.obs import Tracer


@pytest.fixture(scope="module")
def corpus_sources():
    return generate_corpus(apollo_spec(scale=0.02)).sources()


@pytest.fixture(scope="module")
def serial_result(corpus_sources):
    """The reference: serial, cold-cache assessment."""
    return AssessmentPipeline(PipelineConfig()).run(corpus_sources)


def assert_identical(result, reference):
    """Equality down to individual findings and stats, not just totals."""
    assert result.to_dict() == reference.to_dict()
    assert list(result.reports) == list(reference.reports)
    for name, report in reference.reports.items():
        assert result.reports[name].stats == report.stats, name
        assert [f.located() for f in result.reports[name].findings] == \
            [f.located() for f in report.findings], name
    assert result.unparseable == reference.unparseable


class TestDeterminism:
    def test_thread_pool_jobs_4(self, corpus_sources, serial_result):
        result = AssessmentPipeline(
            PipelineConfig(jobs=4)).run(corpus_sources)
        assert_identical(result, serial_result)

    def test_process_pool_jobs_2(self, corpus_sources, serial_result):
        result = AssessmentPipeline(
            PipelineConfig(jobs=2, executor="process")).run(corpus_sources)
        assert_identical(result, serial_result)

    def test_jobs_zero_means_all_cpus(self, corpus_sources, serial_result):
        result = AssessmentPipeline(
            PipelineConfig(jobs=0)).run(corpus_sources)
        assert_identical(result, serial_result)

    def test_cold_then_warm_cache(self, tmp_path, corpus_sources,
                                  serial_result):
        cold_cache = ResultCache(str(tmp_path))
        cold = AssessmentPipeline(
            PipelineConfig(cache=cold_cache)).run(corpus_sources)
        assert_identical(cold, serial_result)
        assert cold_cache.hits == 0
        assert cold_cache.misses == 2 * len(corpus_sources)

        warm_cache = ResultCache(str(tmp_path))
        warm = AssessmentPipeline(
            PipelineConfig(cache=warm_cache)).run(corpus_sources)
        assert_identical(warm, serial_result)
        assert warm_cache.misses == 0
        assert warm_cache.hits == 2 * len(corpus_sources)

    def test_warm_cache_with_parallel_jobs(self, tmp_path, corpus_sources,
                                           serial_result):
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        result = AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)),
            jobs=3)).run(corpus_sources)
        assert_identical(result, serial_result)

    def test_changed_file_invalidates_only_itself(self, tmp_path,
                                                  corpus_sources):
        sources = dict(corpus_sources)
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(sources)
        path = sorted(sources)[0]
        sources[path] = sources[path] + "\nint appended_global;\n"
        cache = ResultCache(str(tmp_path))
        result = AssessmentPipeline(
            PipelineConfig(cache=cache)).run(sources)
        # one parse miss + one checker-bundle miss; everything else hits
        assert cache.misses == 2
        assert cache.hits == 2 * (len(sources) - 1)
        reference = AssessmentPipeline(PipelineConfig()).run(sources)
        assert_identical(result, reference)


class TestConfigValidation:
    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError):
            AssessmentPipeline(PipelineConfig(jobs=-1))

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigError):
            AssessmentPipeline(PipelineConfig(executor="fiber"))

    def test_worker_count_resolution(self):
        assert worker_count(3) == 3
        assert worker_count(0) >= 1


class TestChunking:
    def test_concatenation_preserves_order(self):
        items = list(range(17))
        chunks = chunk_evenly(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == 4
        assert max(map(len, chunks)) - min(map(len, chunks)) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 8) == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 4) == []

    def test_bad_chunk_count(self):
        with pytest.raises(ConfigError):
            chunk_evenly([1], 0)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(PARSE_TAG, "a.cc", "int x;\n")
        assert cache.get(key) is CACHE_MISS
        assert cache.put(key, {"value": [1, 2, 3]})
        assert cache.get(key) == {"value": [1, 2, 3]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_depends_on_every_part(self):
        base = ResultCache.key_for(PARSE_TAG, "a.cc", "int x;\n")
        assert ResultCache.key_for(PARSE_TAG, "b.cc", "int x;\n") != base
        assert ResultCache.key_for(PARSE_TAG, "a.cc", "int y;\n") != base
        assert ResultCache.key_for(CHECK_TAG, "a.cc", "int x;\n") != base
        assert ResultCache.key_for(PARSE_TAG, "a.cc", "int x;\n",
                                   "style:2") != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for(PARSE_TAG, "a.cc", "int x;\n")
        cache.put(key, "fine")
        entry = tmp_path / key[:2] / (key + ".pkl")
        entry.write_bytes(b"not a pickle")
        assert cache.get(key) is CACHE_MISS

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        cache = ResultCache(str(blocker))
        key = cache.key_for(PARSE_TAG, "a.cc", "int x;\n")
        assert not cache.put(key, "value")
        assert cache.get(key) is CACHE_MISS

    def test_unwritable_cache_never_fails_assessment(self, tmp_path,
                                                     corpus_sources,
                                                     serial_result):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        result = AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(blocker)))).run(corpus_sources)
        assert_identical(result, serial_result)


class TestCheckerProtocol:
    def test_split_is_exact(self, corpus_sources):
        pipeline = AssessmentPipeline()
        checkers = pipeline._checkers(corpus_sources)
        per_unit, project = split_checkers(checkers)
        # unit_design distributes since it grew finish_from_units: its
        # per-unit portion rides the bundle, the recursion pass runs on
        # the merged result.
        assert {c.name for c in project} == {"architecture"}
        assert {c.name for c in per_unit} == {
            "language_subset", "casts", "defensive", "globals",
            "naming", "style", "gpu_subset", "unit_design"}

    def test_fingerprint_covers_config(self):
        default = StyleChecker().fingerprint()
        tightened = StyleChecker(
            StyleConfig(max_line_length=100)).fingerprint()
        assert default != tightened
        assert Checker.version in default

    def test_style_for_units_prunes_sources(self):
        from repro.lang.cppmodel import parse_translation_unit
        style = StyleChecker()
        style.add_source("a.cc", "int a;\n")
        style.add_source("b.cc", "int b;\n")
        unit = parse_translation_unit("int a;\n", "a.cc")
        pruned = style.for_units([unit])
        assert pruned._sources == {"a.cc": "int a;\n"}
        assert pruned.config is style.config


class TestFingerprintInvalidation:
    """A profile (or version bump) must invalidate exactly the entries
    of the checkers it affects — and an identical profile must hit."""

    def test_profile_changes_affected_fingerprint_only(self):
        from repro.rules import RuleProfile
        style = StyleChecker()
        globals_default = \
            AssessmentPipeline()._checkers({})[3].fingerprint()
        default = style.fingerprint()
        style.profile = RuleProfile(disable=("SG.*",))
        assert style.fingerprint() != default
        # the same profile leaves checkers without SG rules untouched
        checkers = AssessmentPipeline(PipelineConfig(
            rules=RuleProfile(disable=("SG.*",))))._checkers({})
        by_name = {checker.name: checker for checker in checkers}
        assert by_name["globals"].fingerprint() == globals_default
        assert by_name["style"].fingerprint() == style.fingerprint()

    def test_version_bump_changes_fingerprint(self):
        style = StyleChecker()
        default = style.fingerprint()
        style.version = "999-test"
        assert style.fingerprint() != default
        assert "999-test" in style.fingerprint()

    def test_profile_invalidates_affected_bundles_only(self, tmp_path,
                                                       corpus_sources):
        from repro.rules import RuleProfile
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        files = len(corpus_sources)

        # A profile touching a per-unit checker's rules: parse entries
        # hit, every checker bundle misses (the bundle key joins all
        # per-unit fingerprints).
        cache = ResultCache(str(tmp_path))
        AssessmentPipeline(PipelineConfig(
            cache=cache,
            rules=RuleProfile(disable=("SG.*",)))).run(corpus_sources)
        assert cache.hits == files  # parse only
        assert cache.misses == files  # every checker bundle

        # Re-running with the identical profile hits everything.
        rerun = ResultCache(str(tmp_path))
        AssessmentPipeline(PipelineConfig(
            cache=rerun,
            rules=RuleProfile(disable=("SG.*",)))).run(corpus_sources)
        assert rerun.misses == 0
        assert rerun.hits == 2 * files

    def test_project_only_profile_keeps_bundles(self, tmp_path,
                                                corpus_sources):
        from repro.rules import RuleProfile
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        # AR rules belong to the architecture checker, which is
        # project-level: per-unit bundles stay valid.
        cache = ResultCache(str(tmp_path))
        AssessmentPipeline(PipelineConfig(
            cache=cache,
            rules=RuleProfile(disable=("AR2.*",)))).run(corpus_sources)
        assert cache.misses == 0
        assert cache.hits == 2 * len(corpus_sources)

    def test_profiled_cached_run_matches_uncached(self, tmp_path,
                                                  corpus_sources):
        from repro.rules import RuleProfile
        profile = RuleProfile(disable=("SG.*", "GV.*"))
        reference = AssessmentPipeline(
            PipelineConfig(rules=profile)).run(corpus_sources)
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)),
            rules=profile)).run(corpus_sources)
        warm = AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)), jobs=3,
            rules=profile)).run(corpus_sources)
        assert_identical(warm, reference)
        assert warm.reports["style"].finding_count == 0
        assert warm.reports["globals"].finding_count == 0


class TestParallelTelemetry:
    def test_worker_spans_and_cache_counters(self, tmp_path,
                                             corpus_sources):
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        tracer = Tracer()
        AssessmentPipeline(PipelineConfig(
            tracer=tracer, jobs=4,
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        metrics = tracer.metrics
        files = len(corpus_sources)
        assert metrics.counter_value("cache.hits", stage="parse") == files
        assert metrics.counter_value("cache.hits", stage="check") == files
        assert metrics.counter_value("cache.misses", stage="parse") == 0

    def test_cache_level_counters_and_corruption_event(self, tmp_path,
                                                       corpus_sources):
        # the cache's own accounting lands as unlabeled counters (and
        # Prometheus lines) next to the pipeline's stage-labeled ones
        import io
        import json
        from repro.obs import EventLog, render_prometheus
        from repro.testing import corrupt_cache_entries
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)))).run(corpus_sources)
        assert corrupt_cache_entries(
            ResultCache(str(tmp_path)), count=1) == 1
        tracer = Tracer()
        stream = io.StringIO()
        cache = ResultCache(str(tmp_path))
        AssessmentPipeline(PipelineConfig(
            tracer=tracer, cache=cache,
            log=EventLog(stream))).run(corpus_sources)
        files = len(corpus_sources)
        metrics = tracer.metrics
        assert metrics.counter_value("cache.hits") == cache.hits \
            == 2 * files - 1
        assert metrics.counter_value("cache.misses") == 1
        assert metrics.counter_value("cache.corrupt_entries") == 1
        assert metrics.counter_value("cache.puts") == cache.puts == 1
        text = render_prometheus(tracer)
        assert "repro_cache_corrupt_entries 1" in text
        assert "repro_cache_puts 1" in text
        events = [json.loads(line) for line in
                  stream.getvalue().splitlines()]
        corrupt = [e for e in events
                   if e["event"] == "cache.corrupt_entry"]
        assert len(corrupt) == 1
        assert corrupt[0]["level"] == "warning"
        assert corrupt[0]["path"].endswith(".pkl")

    def test_parallel_run_has_worker_spans(self, corpus_sources):
        tracer = Tracer()
        AssessmentPipeline(PipelineConfig(
            tracer=tracer, jobs=4)).run(corpus_sources)
        assert len(tracer.find("parse_worker")) == 4
        assert len(tracer.find("checker_worker")) == 4
        assert len(tracer.find("parse_file")) == len(corpus_sources)
        histogram = tracer.metrics.histogram("pipeline.parse_seconds")
        assert histogram.count == len(corpus_sources)
        # worker spans hang off the parse span in the grafted tree
        parse_span = tracer.find("parse")[0]
        assert {s.name for s in parse_span.children} == {"parse_worker"}

    def test_task_payloads_pickle(self, corpus_sources):
        # the process executor's hard requirement
        from repro.core.parallel import ParseTask, run_parse_task
        task = ParseTask(items=sorted(corpus_sources.items())[:2],
                         worker=0, traced=True, logged=True)
        outcomes, tracer, events = run_parse_task(
            pickle.loads(pickle.dumps(task)))
        rebuilt, _, replayed = pickle.loads(
            pickle.dumps((outcomes, tracer, events)))
        assert [o.path for o in rebuilt] == [o.path for o in outcomes]
        assert replayed == events and events[-1]["event"] == "worker.parse"


class TestCliParallelFlags:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["--corpus", "0.02", "--jobs", "2",
                     "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hits" in out
        assert main(["--corpus", "0.02", "--jobs", "2",
                     "--cache", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out

    def test_no_cache_overrides_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["--corpus", "0.02", "--cache", str(cache_dir),
                     "--no-cache"]) == 0
        assert not cache_dir.exists()
        assert "cache:" not in capsys.readouterr().out

    def test_negative_jobs_clean_error(self, capsys):
        assert main(["--corpus", "0.02", "--jobs", "-3"]) == 2
        err = capsys.readouterr().err
        assert "bad pipeline configuration" in err
        assert "Traceback" not in err
