"""Tests for the remediation planner and markdown report renderer."""

import pytest

from repro.core import (
    Effort,
    effort_histogram,
    plan_remediation,
    render_markdown,
    render_plan,
)
from repro.iso26262 import GapSeverity, Verdict


class TestRemediationPlan:
    @pytest.fixture(scope="class")
    def plan(self, small_assessment):
        return plan_remediation(small_assessment.tables)

    def test_only_gaps_planned(self, plan, small_assessment):
        gap_count = sum(
            1 for table in small_assessment.tables.values()
            for entry in table.assessments
            if entry.gap is not GapSeverity.NONE)
        assert len(plan) == gap_count

    def test_priority_ordering(self, plan):
        priorities = [item.priority for item in plan]
        assert priorities == sorted(priorities, reverse=True)

    def test_critical_gaps_lead(self, plan):
        assert plan[0].gap is GapSeverity.CRITICAL

    def test_research_items_present(self, plan):
        research = {item.technique_key for item in plan
                    if item.effort is Effort.RESEARCH}
        # GPU language subset and pointer elimination need research
        # innovations per the paper.
        assert "language_subsets" in research
        assert "limited_pointers" in research

    def test_low_effort_items_quote_paper_taxonomy(self, plan):
        by_key = {item.technique_key: item for item in plan}
        assert by_key["defensive_implementation"].effort is Effort.LOW
        assert by_key["no_unconditional_jumps"].effort is Effort.LOW
        assert by_key["low_complexity"].effort is Effort.SIGNIFICANT

    def test_histogram_totals(self, plan):
        histogram = effort_histogram(plan)
        assert sum(histogram.values()) == len(plan)
        assert histogram["RESEARCH"] >= 2

    def test_render_plan(self, plan):
        rendered = render_plan(plan)
        assert "Remediation plan" in rendered
        assert "Research innovations required" in rendered
        assert "Brook" in rendered

    def test_compliant_assessment_has_empty_plan(self):
        from repro.iso26262 import ComplianceEngine, EvidenceSet
        evidence = EvidenceSet()
        for key in ("complexity", "language_subset", "strong_typing",
                    "defensive", "design_principles", "globals", "style",
                    "naming", "unit_design", "architecture"):
            evidence.put(key, {"validation_ratio": 1.0,
                               "conformance_ratio": 1.0,
                               "mean_cohesion": 1.0,
                               "hierarchy_depth": 3.0})
        tables = ComplianceEngine().assess_all(evidence)
        assert plan_remediation(tables) == []


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def markdown(self, small_assessment):
        return render_markdown(small_assessment)

    def test_structure(self, markdown):
        assert markdown.startswith("# ISO 26262-6")
        for heading in ("## Summary", "## Module metrics",
                        "## Requirement tables", "## Observations",
                        "## Remediation"):
            assert heading in markdown

    def test_all_three_tables_rendered(self, markdown):
        assert "### Table 1:" in markdown
        assert "### Table 2:" in markdown
        assert "### Table 3:" in markdown

    def test_grades_rendered(self, markdown):
        assert "++" in markdown

    def test_verdicts_bold(self, markdown):
        assert "**non-compliant**" in markdown
        assert "**compliant**" in markdown

    def test_observations_listed(self, markdown):
        assert "**Observation 1**" in markdown
        assert "**Observation 14**" in markdown

    def test_module_rows_present(self, markdown, small_assessment):
        for module in small_assessment.modules:
            assert f"| {module.name} |" in markdown
