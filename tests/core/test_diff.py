"""Tests for the remediation round trip and assessment diffing."""

import pytest

from repro.core import assess_corpus, diff_assessments, gap_reduction
from repro.corpus import apollo_remediated_spec, generate_corpus
from repro.iso26262 import Verdict


@pytest.fixture(scope="module")
def remediated_assessment():
    return assess_corpus(
        generate_corpus(apollo_remediated_spec(scale=0.04)))


@pytest.fixture(scope="module")
def diff(small_assessment, remediated_assessment):
    return diff_assessments(small_assessment, remediated_assessment)


class TestRemediatedCorpus:
    def test_engineering_fixes_flip_verdicts(self, remediated_assessment):
        tables = remediated_assessment.tables
        modeling = tables["modeling_coding"]
        assert modeling.assessment("low_complexity").verdict \
            is Verdict.COMPLIANT
        assert modeling.assessment("defensive_implementation").verdict \
            is Verdict.COMPLIANT
        unit = tables["unit_design"]
        assert unit.assessment("single_entry_exit").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("variable_initialization").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("no_unconditional_jumps").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("no_recursion").verdict \
            is Verdict.COMPLIANT

    def test_research_gaps_persist(self, remediated_assessment):
        """GPU code keeps its intrinsic violations — the research items."""
        tables = remediated_assessment.tables
        assert tables["modeling_coding"].assessment(
            "language_subsets").verdict is Verdict.NON_COMPLIANT
        assert tables["unit_design"].assessment(
            "limited_pointers").verdict is Verdict.NON_COMPLIANT

    def test_observations_flip(self, remediated_assessment):
        by_number = {observation.number: observation
                     for observation in
                     remediated_assessment.observations}
        assert not by_number[1].supported   # complexity fixed
        assert not by_number[6].supported   # defensive added
        assert by_number[3].supported       # GPU subset still missing
        assert by_number[4].supported       # CUDA still uses pointers


class TestDiff:
    def test_improvements_no_regressions(self, diff):
        assert len(diff.improved) >= 6
        assert diff.regressed == []

    def test_expected_flips(self, diff):
        improved_keys = {entry.technique_key for entry in diff.improved}
        assert {"low_complexity", "defensive_implementation",
                "single_entry_exit", "variable_initialization",
                "no_unconditional_jumps"} <= improved_keys

    def test_residual_gaps_are_research_items(self, diff):
        residual_keys = {entry.technique_key
                         for entry in diff.residual_gaps}
        assert "language_subsets" in residual_keys
        assert "limited_pointers" in residual_keys

    def test_gap_reduction(self, small_assessment,
                           remediated_assessment):
        reduction = gap_reduction(small_assessment,
                                  remediated_assessment)
        assert reduction["after"] < reduction["before"]
        assert reduction["after"] > 0  # research gaps remain

    def test_render(self, diff):
        rendered = diff.render()
        assert "improved:" in rendered
        assert "residual" in rendered

    def test_self_diff_is_unchanged(self, small_assessment):
        diff = diff_assessments(small_assessment, small_assessment)
        assert diff.improved == []
        assert diff.regressed == []
        assert all(entry.unchanged for entry in diff.transitions)
