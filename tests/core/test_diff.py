"""Tests for the remediation round trip and assessment diffing."""

import json

import pytest

from repro.core import (
    assess_corpus,
    assessment_view_from_dict,
    diff_assessments,
    gap_reduction,
    load_assessment_view,
)
from repro.errors import BaselineError
from repro.corpus import apollo_remediated_spec, generate_corpus
from repro.iso26262 import Verdict


@pytest.fixture(scope="module")
def remediated_assessment():
    return assess_corpus(
        generate_corpus(apollo_remediated_spec(scale=0.04)))


@pytest.fixture(scope="module")
def diff(small_assessment, remediated_assessment):
    return diff_assessments(small_assessment, remediated_assessment)


class TestRemediatedCorpus:
    def test_engineering_fixes_flip_verdicts(self, remediated_assessment):
        tables = remediated_assessment.tables
        modeling = tables["modeling_coding"]
        assert modeling.assessment("low_complexity").verdict \
            is Verdict.COMPLIANT
        assert modeling.assessment("defensive_implementation").verdict \
            is Verdict.COMPLIANT
        unit = tables["unit_design"]
        assert unit.assessment("single_entry_exit").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("variable_initialization").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("no_unconditional_jumps").verdict \
            is Verdict.COMPLIANT
        assert unit.assessment("no_recursion").verdict \
            is Verdict.COMPLIANT

    def test_research_gaps_persist(self, remediated_assessment):
        """GPU code keeps its intrinsic violations — the research items."""
        tables = remediated_assessment.tables
        assert tables["modeling_coding"].assessment(
            "language_subsets").verdict is Verdict.NON_COMPLIANT
        assert tables["unit_design"].assessment(
            "limited_pointers").verdict is Verdict.NON_COMPLIANT

    def test_observations_flip(self, remediated_assessment):
        by_number = {observation.number: observation
                     for observation in
                     remediated_assessment.observations}
        assert not by_number[1].supported   # complexity fixed
        assert not by_number[6].supported   # defensive added
        assert by_number[3].supported       # GPU subset still missing
        assert by_number[4].supported       # CUDA still uses pointers


class TestDiff:
    def test_improvements_no_regressions(self, diff):
        assert len(diff.improved) >= 6
        assert diff.regressed == []

    def test_expected_flips(self, diff):
        improved_keys = {entry.technique_key for entry in diff.improved}
        assert {"low_complexity", "defensive_implementation",
                "single_entry_exit", "variable_initialization",
                "no_unconditional_jumps"} <= improved_keys

    def test_residual_gaps_are_research_items(self, diff):
        residual_keys = {entry.technique_key
                         for entry in diff.residual_gaps}
        assert "language_subsets" in residual_keys
        assert "limited_pointers" in residual_keys

    def test_gap_reduction(self, small_assessment,
                           remediated_assessment):
        reduction = gap_reduction(small_assessment,
                                  remediated_assessment)
        assert reduction["after"] < reduction["before"]
        assert reduction["after"] > 0  # research gaps remain
        assert reduction["reduction"] == \
            reduction["before"] - reduction["after"]

    def test_to_dict_rollup(self, diff):
        document = diff.to_dict()
        assert document["improved"] == len(diff.improved)
        assert document["regressed"] == 0
        assert all(entry["direction"] == "improved"
                   for entry in document["transitions"])
        residual_keys = {entry["technique"]
                         for entry in document["residual_gaps"]}
        assert "language_subsets" in residual_keys

    def test_render(self, diff):
        rendered = diff.render()
        assert "improved:" in rendered
        assert "residual" in rendered

    def test_self_diff_is_unchanged(self, small_assessment):
        diff = diff_assessments(small_assessment, small_assessment)
        assert diff.improved == []
        assert diff.regressed == []
        assert all(entry.unchanged for entry in diff.transitions)


def document(**verdicts):
    """A minimal --json-shaped document with one table."""
    return {"tables": {"t": {"techniques": [
        {"key": key, "title": key.title(), "verdict": verdict,
         "gap": gap}
        for key, (verdict, gap) in verdicts.items()]}}}


class TestTransitionSemantics:
    """Pin the verdict ranking on synthetic rehydrated documents."""

    def diff_single(self, before, after):
        view_before = assessment_view_from_dict(
            document(x=(before, "NONE")))
        view_after = assessment_view_from_dict(
            document(x=(after, "NONE")))
        [transition] = diff_assessments(view_before, view_after).transitions
        return transition

    @pytest.mark.parametrize("before,after", [
        ("non-compliant", "compliant"),
        ("non-compliant", "partial"),
        ("unknown", "partial"),
        ("partial", "compliant"),
        ("partial", "not applicable"),
    ])
    def test_improvements(self, before, after):
        transition = self.diff_single(before, after)
        assert transition.improved and not transition.regressed

    @pytest.mark.parametrize("before,after", [
        ("compliant", "partial"),
        ("partial", "non-compliant"),
        ("compliant", "non-compliant"),
        ("partial", "unknown"),
    ])
    def test_regressions(self, before, after):
        transition = self.diff_single(before, after)
        assert transition.regressed and not transition.improved

    def test_compliant_to_not_applicable_is_lateral(self):
        transition = self.diff_single("compliant", "not applicable")
        assert not transition.improved
        assert not transition.regressed
        assert not transition.unchanged
        assert transition.to_dict()["direction"] == "unchanged"

    def test_gap_reduction_weights(self):
        before = assessment_view_from_dict(document(
            a=("non-compliant", "CRITICAL"), b=("partial", "MAJOR"),
            c=("partial", "MINOR"), d=("compliant", "NONE")))
        after = assessment_view_from_dict(document(
            a=("non-compliant", "MAJOR"), b=("compliant", "NONE"),
            c=("partial", "MINOR"), d=("compliant", "NONE")))
        assert gap_reduction(before, after) == \
            {"before": 6, "after": 3, "reduction": 3}


class TestRehydration:
    def test_round_trip_diffs_as_unchanged(self, small_assessment):
        view = assessment_view_from_dict(small_assessment.to_dict())
        diff = diff_assessments(small_assessment, view)
        assert all(entry.unchanged for entry in diff.transitions)
        assert gap_reduction(small_assessment, view)["reduction"] == 0

    def test_view_works_on_either_side(self, small_assessment):
        view = assessment_view_from_dict(small_assessment.to_dict())
        diff = diff_assessments(view, small_assessment)
        assert diff.improved == [] and diff.regressed == []

    def test_json_serialized_round_trip(self, small_assessment,
                                        tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(small_assessment.to_dict()),
                        encoding="utf-8")
        view = load_assessment_view(str(path))
        assert all(entry.unchanged for entry in
                   diff_assessments(small_assessment, view).transitions)

    def test_missing_gap_defaults_to_none(self):
        raw = document(x=("compliant", "NONE"))
        del raw["tables"]["t"]["techniques"][0]["gap"]
        view = assessment_view_from_dict(raw)
        assert gap_reduction(view, view) == \
            {"before": 0, "after": 0, "reduction": 0}

    @pytest.mark.parametrize("raw", [
        {},
        {"tables": {}},
        {"tables": {"t": {}}},
        {"tables": {"t": {"techniques": [{"title": "no key"}]}}},
        {"tables": {"t": {"techniques": [
            {"key": "x", "verdict": "sideways"}]}}},
        {"tables": {"t": {"techniques": [
            {"key": "x", "verdict": "compliant", "gap": "HUGE"}]}}},
    ])
    def test_malformed_documents_raise(self, raw):
        with pytest.raises(BaselineError):
            assessment_view_from_dict(raw)

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_assessment_view(str(tmp_path / "absent.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_assessment_view(str(path))


class TestDiffBaselineCli:
    def write_tree(self, root, text):
        root.mkdir(exist_ok=True)
        (root / "a.cpp").write_text(text, encoding="utf-8")
        return str(root)

    def test_diff_baseline_prints_transitions(self, tmp_path, capsys):
        from repro.core.cli import main
        tree = self.write_tree(
            tmp_path / "tree", "int f() { goto e; e: return 1; }\n")
        baseline = str(tmp_path / "base.json")
        assert main([tree, "--json", baseline]) == 0
        capsys.readouterr()
        self.write_tree(tmp_path / "tree", "int f() { return 1; }\n")
        assert main([tree, "--diff-baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "Assessment diff" in out
        assert "No unconditional jumps: non-compliant -> compliant" in out
        assert "weighted gap:" in out
        assert "reduced by" in out

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        from repro.core.cli import main
        tree = self.write_tree(tmp_path / "tree", "int x;\n")
        assert main([tree, "--diff-baseline",
                     str(tmp_path / "absent.json")]) == 2
        assert "cannot read diff baseline" in capsys.readouterr().err

    def test_non_assessment_document_exits_2(self, tmp_path, capsys):
        from repro.core.cli import main
        tree = self.write_tree(tmp_path / "tree", "int x;\n")
        junk = tmp_path / "junk.json"
        junk.write_text('{"not": "an assessment"}', encoding="utf-8")
        assert main([tree, "--diff-baseline", str(junk)]) == 2
        assert "not an assessment" in capsys.readouterr().err
