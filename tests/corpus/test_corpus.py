"""Tests for the synthetic corpus generator."""

import os
import random

import pytest

from repro.corpus import (
    APOLLO_MODULES,
    ComplexityProfile,
    CorpusSpec,
    EXPECTED_OVER_TEN,
    ModuleSpec,
    apollo_spec,
    generate_corpus,
    read_tree,
    write_corpus,
)
from repro.corpus.functions import FunctionFactory, FunctionRequest, \
    NamePool
from repro.errors import CorpusError
from repro.lang import parse_translation_unit


def parse_lines(lines):
    return parse_translation_unit("\n".join(lines) + "\n", "gen.cc")


class TestSpecs:
    def test_profile_totals(self):
        profile = ComplexityProfile(low=10, moderate=3, risky=2, unstable=1)
        assert profile.total == 16
        assert profile.over_ten == 6

    def test_profile_scaling_keeps_nonzero_bands(self):
        profile = ComplexityProfile(low=100, moderate=4, risky=2,
                                    unstable=1)
        scaled = profile.scaled(0.01)
        assert scaled.low >= 1
        assert scaled.moderate >= 1
        assert scaled.unstable >= 1

    def test_zero_band_stays_zero_when_scaled(self):
        profile = ComplexityProfile(low=100, moderate=0, risky=0,
                                    unstable=0)
        assert profile.scaled(0.5).moderate == 0

    def test_invalid_module_name(self):
        with pytest.raises(CorpusError):
            ModuleSpec(name="bad name",
                       profile=ComplexityProfile(1, 0, 0, 0))

    def test_invalid_ratio(self):
        with pytest.raises(CorpusError):
            ModuleSpec(name="m", profile=ComplexityProfile(1, 0, 0, 0),
                       multi_exit_ratio=1.5)

    def test_duplicate_modules_rejected(self):
        module = ModuleSpec(name="m", profile=ComplexityProfile(1, 0, 0, 0))
        with pytest.raises(CorpusError):
            CorpusSpec(modules=(module, module))

    def test_invalid_scale_rejected(self):
        module = ModuleSpec(name="m", profile=ComplexityProfile(1, 0, 0, 0))
        with pytest.raises(CorpusError):
            CorpusSpec(modules=(module,), scale=0)

    def test_apollo_calibration_sums_to_554(self):
        assert EXPECTED_OVER_TEN == 554
        assert sum(module.profile.over_ten
                   for module in APOLLO_MODULES) == 554


class TestFunctionFactory:
    def make(self, **kwargs):
        rng = random.Random(1)
        factory = FunctionFactory(rng)
        request = FunctionRequest(name="TestedFunction", **kwargs)
        return parse_lines(factory.render(request)), request

    @pytest.mark.parametrize("target", [1, 2, 5, 11, 20, 35, 55])
    def test_exact_complexity(self, target):
        unit, _ = self.make(complexity=target)
        assert unit.function("TestedFunction").cyclomatic_complexity \
            == target

    def test_multi_exit_flag(self):
        unit, _ = self.make(complexity=4, multi_exit=True)
        assert unit.function("TestedFunction").has_multiple_exits

    def test_single_exit_by_default(self):
        unit, _ = self.make(complexity=4)
        assert not unit.function("TestedFunction").has_multiple_exits

    def test_goto_emitted(self):
        unit, _ = self.make(complexity=2, use_goto=True)
        assert unit.function("TestedFunction").goto_count == 1

    def test_cast_count(self):
        from repro.checkers import CastChecker
        unit, _ = self.make(complexity=2, cast_count=3)
        report = CastChecker().check_project([unit])
        assert report.stats["explicit_casts"] >= 3

    def test_dynamic_alloc(self):
        unit, _ = self.make(complexity=2, dynamic_alloc=True)
        assert unit.function("TestedFunction").uses_dynamic_memory

    def test_recursive_template(self):
        rng = random.Random(2)
        factory = FunctionFactory(rng)
        request = FunctionRequest(name="WalkTree", complexity=3,
                                  recursive=True)
        unit = parse_lines(factory.render(request))
        function = unit.function("WalkTree")
        assert "WalkTree" in function.calls

    def test_lines_within_google_limit(self):
        rng = random.Random(3)
        factory = FunctionFactory(rng)
        for index in range(30):
            request = FunctionRequest(name=f"Func{index}",
                                      complexity=1 + index % 25)
            for line in factory.render(request):
                assert len(line) <= 80, line

    def test_name_pool_unique(self):
        pool = NamePool(random.Random(4))
        names = [pool.function_name() for _ in range(500)]
        assert len(set(names)) == 500


class TestGeneration:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(apollo_spec(scale=0.03))

    def test_deterministic(self, corpus):
        again = generate_corpus(apollo_spec(scale=0.03))
        assert corpus.sources() == again.sources()

    def test_different_seed_differs(self, corpus):
        other = generate_corpus(apollo_spec(scale=0.03, seed=1))
        assert corpus.sources() != other.sources()

    def test_all_modules_present(self, corpus):
        assert set(corpus.module_names()) == {
            module.name for module in APOLLO_MODULES}

    def test_every_file_parses(self, corpus):
        for record in corpus.files:
            unit = parse_translation_unit(record.source, record.path)
            assert unit.line_count > 0

    def test_exact_cc_over_ten(self, corpus):
        from repro.metrics import summarize_units
        units = [parse_translation_unit(record.source, record.path)
                 for record in corpus.files]
        summary = summarize_units(units)
        assert summary.moderate_or_higher == \
            corpus.spec.expected_over_ten

    def test_cuda_files_only_where_specified(self, corpus):
        cuda_modules = {record.module for record in corpus.files
                        if record.path.endswith(".cu")}
        assert cuda_modules == {"perception", "drivers"}

    def test_headers_have_guards(self, corpus):
        headers = [record for record in corpus.files
                   if record.path.endswith(".h")]
        assert headers
        for record in headers:
            assert "#ifndef" in record.source

    def test_globals_count_exact(self, corpus):
        for module in corpus.spec.effective_modules():
            count = 0
            for record in corpus.files_of(module.name):
                unit = parse_translation_unit(record.source, record.path)
                count += len(unit.mutable_globals)
            assert count == module.globals_count, module.name


class TestWriter:
    def test_write_and_read_roundtrip(self, tmp_path):
        corpus = generate_corpus(apollo_spec(scale=0.02))
        written = write_corpus(corpus, str(tmp_path))
        assert len(written) == len(corpus.files)
        loaded = read_tree(str(tmp_path))
        assert loaded == corpus.sources()

    def test_refuses_overwrite(self, tmp_path):
        corpus = generate_corpus(apollo_spec(scale=0.02))
        write_corpus(corpus, str(tmp_path))
        with pytest.raises(CorpusError):
            write_corpus(corpus, str(tmp_path))
        write_corpus(corpus, str(tmp_path), overwrite=True)

    def test_all_c_family_extensions_loaded(self, tmp_path):
        # .c, .hpp, .cxx, and .hh were once silently dropped
        for name in ("legacy.c", "types.hpp", "impl.cxx", "iface.hh",
                     "main.cc", "kernel.cu", "decl.h", "body.cpp",
                     "dev.cuh"):
            (tmp_path / name).write_text(f"// {name}\n")
        (tmp_path / "notes.txt").write_text("not source\n")
        (tmp_path / "build.o").write_bytes(b"\x7fELF")
        loaded = read_tree(str(tmp_path))
        assert set(loaded) == {"legacy.c", "types.hpp", "impl.cxx",
                               "iface.hh", "main.cc", "kernel.cu",
                               "decl.h", "body.cpp", "dev.cuh"}

    def test_non_utf8_file_read_tolerantly(self, tmp_path):
        (tmp_path / "latin1.cc").write_bytes(
            b"// r\xe9sum\xe9 of the controller\nint x;\n")
        loaded = read_tree(str(tmp_path))
        assert "int x;" in loaded["latin1.cc"]
        assert "�" in loaded["latin1.cc"]

    def test_upper_case_extensions_loaded(self, tmp_path):
        # Old Unix C++ (.C), DOS-era exports (.CPP, .HH): matching is
        # case-insensitive, so these need no SOURCE_EXTENSIONS entries.
        for name in ("olden.C", "exported.CPP", "iface.HH",
                     "Mixed.CxX", "plain.cpp"):
            (tmp_path / name).write_text(f"// {name}\n")
        (tmp_path / "NOTES.TXT").write_text("not source\n")
        loaded = read_tree(str(tmp_path))
        assert set(loaded) == {"olden.C", "exported.CPP", "iface.HH",
                               "Mixed.CxX", "plain.cpp"}

    def test_default_case_corpus_stays_byte_identical(self, tmp_path):
        """Case-insensitive matching must not perturb the lower-case
        default corpus: same files, same bytes, same order."""
        corpus = generate_corpus(apollo_spec(scale=0.02))
        write_corpus(corpus, str(tmp_path))
        assert read_tree(str(tmp_path)) == corpus.sources()

    def test_unreadable_file_is_skipped_not_fatal(self, tmp_path):
        from repro.obs import BufferLog
        (tmp_path / "good.cc").write_text("int x;\n")
        # A dangling symlink: the walk sees the name, the open fails
        # with OSError — the same shape as a file vanishing (atomic-
        # rename race) or turning unreadable between walk and read.
        os.symlink(str(tmp_path / "no-such-target"),
                   str(tmp_path / "ghost.cc"))
        log = BufferLog()
        skipped = []
        loaded = read_tree(str(tmp_path), log=log, skipped=skipped)
        assert loaded == {"good.cc": "int x;\n"}
        assert skipped == ["ghost.cc"]
        events = [event for event in log.events
                  if event["event"] == "parse.skipped_unreadable"]
        assert len(events) == 1
        assert events[0]["path"] == "ghost.cc"
        assert "FileNotFoundError" in events[0]["error"]

    def test_skip_accounting_is_optional(self, tmp_path):
        os.symlink(str(tmp_path / "gone"), str(tmp_path / "ghost.cc"))
        assert read_tree(str(tmp_path)) == {}
