"""Tests for the MiniC recursive-descent parser."""

import pytest

from repro.errors import ParseError
from repro.lang.minic import ast, parse_program


def first_function(source):
    return parse_program(source).functions[0]


class TestTopLevel:
    def test_function_definition(self):
        program = parse_program("int main() { return 0; }")
        assert program.functions[0].name == "main"
        assert program.functions[0].return_type == "int"

    def test_void_parameter_list(self):
        function = first_function("void f(void) { }")
        assert function.parameters == []

    def test_kernel_qualifier(self):
        program = parse_program("__global__ void k(float *x) { }")
        assert program.functions[0].is_kernel
        assert program.kernels == [program.functions[0]]

    def test_device_qualifier(self):
        program = parse_program("__device__ float d(float x) { return x; }")
        assert program.functions[0].is_device

    def test_global_declaration(self):
        program = parse_program("int g_count = 3;\nvoid f() { }")
        assert program.globals[0].name == "g_count"

    def test_type_collapse(self):
        assert first_function("double f() { return 0.0; }") \
            .return_type == "float"
        assert first_function("unsigned int f() { return 0; }") \
            .return_type == "int"
        assert first_function("bool f() { return 1; }").return_type == "int"

    def test_pointer_parameter(self):
        function = first_function("void f(float *data, int n) { }")
        assert function.parameters[0].is_pointer
        assert not function.parameters[1].is_pointer

    def test_array_parameter_is_pointer(self):
        function = first_function("void f(float data[]) { }")
        assert function.parameters[0].is_pointer

    def test_pointer_return_type_rejected(self):
        with pytest.raises(ParseError):
            parse_program("float *f() { return 0; }")


class TestStatements:
    def test_if_else(self):
        function = first_function(
            "int f(int x) { if (x > 0) { return 1; } else { return 2; } }")
        statement = function.body.statements[0]
        assert isinstance(statement, ast.If)
        assert statement.else_branch is not None

    def test_while(self):
        function = first_function("void f(int n) { while (n > 0) { n--; } }")
        assert isinstance(function.body.statements[0], ast.While)

    def test_do_while(self):
        function = first_function(
            "void f(int n) { do { n--; } while (n > 0); }")
        assert isinstance(function.body.statements[0], ast.DoWhile)

    def test_for_with_declaration(self):
        function = first_function(
            "void f() { for (int i = 0; i < 4; i++) { } }")
        statement = function.body.statements[0]
        assert isinstance(statement, ast.For)
        assert isinstance(statement.initializer, ast.Declaration)

    def test_for_all_clauses_empty(self):
        function = first_function("void f() { for (;;) { break; } }")
        statement = function.body.statements[0]
        assert statement.initializer is None
        assert statement.condition is None
        assert statement.increment is None

    def test_switch_with_default(self):
        function = first_function(
            "int f(int x) { switch (x) { case 1: return 1; "
            "default: return 0; } }")
        statement = function.body.statements[0]
        assert isinstance(statement, ast.Switch)
        assert len(statement.cases) == 2
        assert statement.cases[1].value is None

    def test_statement_before_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int x) { switch (x) { x = 1; } }")

    def test_array_declaration_with_initializer_list(self):
        function = first_function("void f() { float a[4] = {1.0f, 2.0f}; }")
        declaration = function.body.statements[0]
        assert declaration.array_size is not None
        assert len(declaration.initializer_list) == 2

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f() { int x = 1;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        function = first_function("int f() { return 1 + 2 * 3; }")
        value = function.body.statements[0].value
        assert value.operator == "+"
        assert value.right.operator == "*"

    def test_precedence_relational_over_logical(self):
        function = first_function("int f(int a, int b) { return a > 0 && b > 0; }")
        value = function.body.statements[0].value
        assert isinstance(value, ast.Logical)

    def test_ternary_creates_decision(self):
        program = parse_program("int f(int x) { return x > 0 ? 1 : 2; }")
        assert program.decision_count == 1

    def test_assignment_right_associative(self):
        function = first_function("void f(int a, int b) { a = b = 3; }")
        assignment = function.body.statements[0].expression
        assert isinstance(assignment.value, ast.Assignment)

    def test_compound_assignment(self):
        function = first_function("void f(int a) { a += 2; }")
        assert function.body.statements[0].expression.operator == "+="

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int a) { 3 = a; }")

    def test_cast_expression(self):
        function = first_function("int f(float x) { return (int)x; }")
        value = function.body.statements[0].value
        assert isinstance(value, ast.Cast)
        assert value.type_name == "int"

    def test_parenthesized_not_cast(self):
        function = first_function("int f(int x) { return (x) + 1; }")
        value = function.body.statements[0].value
        assert isinstance(value, ast.Binary)

    def test_thread_builtin(self):
        function = first_function(
            "__global__ void k(float *p) { int i = threadIdx.x; }")
        declaration = function.body.statements[0]
        assert isinstance(declaration.initializer, ast.ThreadBuiltin)

    def test_bad_thread_axis_rejected(self):
        with pytest.raises(ParseError):
            parse_program("__global__ void k() { int i = threadIdx.w; }")

    def test_float_literal_suffix(self):
        function = first_function("float f() { return 2.5f; }")
        assert function.body.statements[0].value.value == 2.5

    def test_hex_literal(self):
        function = first_function("int f() { return 0xFF; }")
        assert function.body.statements[0].value.value == 255

    def test_char_literal(self):
        function = first_function("int f() { return 'A'; }")
        assert function.body.statements[0].value.value == 65

    def test_index_chain(self):
        function = first_function("float f(float *a) { return a[1 + 2]; }")
        assert isinstance(function.body.statements[0].value, ast.Index)

    def test_call_with_arguments(self):
        function = first_function(
            "float f(float x) { return fmaxf(x, 0.0f); }")
        call = function.body.statements[0].value
        assert isinstance(call, ast.Call)
        assert len(call.arguments) == 2

    def test_prefix_and_postfix_incdec(self):
        function = first_function("void f(int a) { ++a; a--; }")
        first = function.body.statements[0].expression
        second = function.body.statements[1].expression
        assert first.is_prefix
        assert not second.is_prefix


class TestCoverageIds:
    def test_statement_ids_dense(self):
        program = parse_program(
            "int f(int x) { int y = 1; if (x) { y = 2; } return y; }")
        ids = [statement.statement_id for statement in program.statements]
        assert ids == list(range(len(ids)))

    def test_decision_ids_dense(self):
        program = parse_program(
            "void f(int a) { if (a) { } while (a) { break; } "
            "for (; a > 0;) { break; } }")
        assert program.decision_count == 3
        assert [decision.decision_id
                for decision in program.decisions] == [0, 1, 2]

    def test_condition_decomposition(self):
        program = parse_program(
            "void f(int a, int b, int c) { if (a > 0 && (b > 0 || c)) { } }")
        decision = program.decisions[0]
        assert decision.condition_count == 3
        assert decision.is_compound

    def test_single_condition_decision(self):
        program = parse_program("void f(int a) { if (!a) { } }")
        assert program.decisions[0].condition_count == 1

    def test_empty_statement_has_no_id(self):
        program = parse_program("void f() { ; }")
        assert program.statement_count == 0

    def test_switch_cases_have_ids(self):
        program = parse_program(
            "void f(int x) { switch (x) { case 1: break; default: break; } }")
        case_ids = [statement.statement_id
                    for statement in program.statements
                    if isinstance(statement, ast.SwitchCase)]
        assert len(case_ids) == 2
