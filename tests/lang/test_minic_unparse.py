"""Tests for the MiniC unparser: round trips and semantic preservation."""

import pytest

from repro.dnn.minic_yolo import YOLO_FILES
from repro.gpu.kernels import ALL_KERNELS_SOURCE
from repro.lang.minic import (
    Interpreter,
    parse_program,
    unparse_expression,
    unparse_program,
)


def roundtrip(source):
    program = parse_program(source)
    text = unparse_program(program)
    return program, parse_program(text), text


class TestExpressionRendering:
    def parse_expr(self, expression):
        program = parse_program(f"int f(int a, int b, int c) "
                                f"{{ return {expression}; }}")
        return program.functions[0].body.statements[0].value

    @pytest.mark.parametrize("expression", [
        "a + b * c",
        "(a + b) * c",
        "a - (b - c)",
        "a / b / c",
        "a % b + c",
        "a << 2 | b",
        "!(a && b)",
        "-a + +b",
        "a > 0 ? b : c",
        "(int)a + b",
        "fmaxf(a, b)",
        "a == b != c",
        "a & b ^ c",
    ])
    def test_semantics_preserved(self, expression):
        node = self.parse_expr(expression)
        rendered = unparse_expression(node)
        program_a = parse_program(
            f"int f(int a, int b, int c) {{ return {expression}; }}")
        program_b = parse_program(
            f"int f(int a, int b, int c) {{ return {rendered}; }}")

        def outcome(program, args):
            try:
                return ("value", Interpreter(program).run("f", list(args)))
            except Exception as error:  # noqa: BLE001 - compared by type
                return ("error", type(error).__name__)

        for args in [(1, 2, 3), (7, -2, 5), (0, 0, 1), (-4, 9, -1)]:
            assert outcome(program_a, args) == outcome(program_b, args), \
                rendered

    def test_minimal_parentheses(self):
        node = self.parse_expr("a + b * c")
        assert unparse_expression(node) == "a + b * c"

    def test_needed_parentheses_kept(self):
        node = self.parse_expr("(a + b) * c")
        assert unparse_expression(node) == "(a + b) * c"


class TestProgramRoundTrip:
    @pytest.mark.parametrize("filename", sorted(YOLO_FILES))
    def test_yolo_files_roundtrip_structure(self, filename):
        original, reparsed, _ = roundtrip(YOLO_FILES[filename])
        assert len(reparsed.functions) == len(original.functions)
        assert reparsed.statement_count == original.statement_count
        assert reparsed.decision_count == original.decision_count

    def test_kernels_roundtrip_and_stay_kernels(self):
        original, reparsed, text = roundtrip(ALL_KERNELS_SOURCE)
        assert len(reparsed.kernels) == len(original.kernels)
        assert "__global__" in text

    def test_roundtrip_is_fixpoint(self):
        source = YOLO_FILES["box.c"]
        _, once, text_once = roundtrip(source)
        text_twice = unparse_program(once)
        assert text_once == text_twice

    def test_semantics_preserved_through_roundtrip(self):
        source = YOLO_FILES["activations.c"]
        original = parse_program(source)
        reparsed = parse_program(unparse_program(original))
        for value in (-2.0, -0.5, 0.0, 0.5, 2.0):
            for activation_type in range(7):
                assert Interpreter(original).run(
                    "activate", [value, activation_type]) == \
                    pytest.approx(Interpreter(reparsed).run(
                        "activate", [value, activation_type]))

    def test_globals_preserved(self):
        source = ("int g_counter = 7;\nfloat g_table[3] = {1.0f, 2.0f};\n"
                  "int get() { return g_counter; }")
        original, reparsed, _ = roundtrip(source)
        assert len(reparsed.globals) == 2
        assert Interpreter(reparsed).run("get") == 7

    def test_switch_fallthrough_preserved(self):
        source = ("int f(int x) { int r = 0; switch (x) { "
                  "case 1: r += 1; case 2: r += 2; break; "
                  "default: r = 9; } return r; }")
        original, reparsed, _ = roundtrip(source)
        for value in (1, 2, 5):
            assert Interpreter(original).run("f", [value]) == \
                Interpreter(reparsed).run("f", [value])

    def test_coverage_ids_reassigned_densely(self):
        source = YOLO_FILES["gemm.c"]
        _, reparsed, _ = roundtrip(source)
        ids = [statement.statement_id
               for statement in reparsed.statements]
        assert ids == list(range(len(ids)))
