"""Tests for the C/C++/CUDA tokenizer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Lexer, code_tokens, tokenize
from repro.lang.tokens import Token, TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)]


class TestBasicTokens:
    def test_identifier_and_keyword(self):
        tokens = tokenize("int foo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "int"
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[1].text == "foo"

    def test_cuda_qualifier_is_keyword(self):
        tokens = tokenize("__global__ void k()")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "__global__"

    def test_empty_source(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t  \n") == []

    def test_positions_are_one_based(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_line_continuation_in_whitespace(self):
        tokens = tokenize("a \\\n b")
        assert [token.text for token in tokens] == ["a", "b"]
        assert tokens[1].line == 2


class TestNumbers:
    @pytest.mark.parametrize("literal", [
        "0", "42", "3.14", "1e10", "1E-5", "0x1F", "0xffUL", "100u",
        "2.5f", "1'000'000", ".5", "6.02e23",
    ])
    def test_number_forms(self, literal):
        tokens = tokenize(literal)
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == literal

    def test_member_access_is_not_a_number(self):
        assert texts("a.b") == ["a", ".", "b"]

    def test_float_leading_dot_after_identifier(self):
        # `x.5` cannot occur, but `f(.5)` can.
        assert kinds("f(.5)") == [TokenKind.IDENTIFIER, TokenKind.PUNCT,
                                  TokenKind.NUMBER, TokenKind.PUNCT]


class TestStringsAndChars:
    def test_simple_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING

    def test_string_with_escapes(self):
        tokens = tokenize(r'"a\"b\\c"')
        assert len(tokens) == 1
        assert tokens[0].text == r'"a\"b\\c"'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_string_at_newline(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_char_literal(self):
        tokens = tokenize("'x'")
        assert tokens[0].kind is TokenKind.CHAR

    def test_escaped_char(self):
        tokens = tokenize(r"'\n'")
        assert tokens[0].text == r"'\n'"

    def test_raw_string(self):
        tokens = tokenize('R"(no \\ escapes here)"')
        assert tokens[0].kind is TokenKind.STRING

    def test_raw_string_with_delimiter(self):
        tokens = tokenize('R"sep(a)(b)sep"')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == 'R"sep(a)(b)sep"'


class TestComments:
    def test_line_comment(self):
        tokens = tokenize("a // rest of line\nb")
        assert [token.kind for token in tokens] == [
            TokenKind.IDENTIFIER, TokenKind.COMMENT, TokenKind.IDENTIFIER]

    def test_block_comment_single_line(self):
        tokens = tokenize("a /* mid */ b")
        assert tokens[1].kind is TokenKind.COMMENT

    def test_block_comment_multi_line_spans(self):
        tokens = tokenize("/* one\ntwo\nthree */ x")
        assert tokens[0].end_line == 3
        assert tokens[1].line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_code_tokens_filters_comments(self):
        tokens = tokenize("a // c\n#define X 1\nb")
        filtered = code_tokens(tokens)
        assert [token.text for token in filtered] == ["a", "b"]

    def test_division_is_not_comment(self):
        assert texts("a / b") == ["a", "/", "b"]


class TestPreprocessor:
    def test_include_directive(self):
        tokens = tokenize('#include <stdio.h>\nint x;')
        assert tokens[0].kind is TokenKind.PREPROCESSOR
        assert "#include" in tokens[0].text

    def test_directive_with_continuation(self):
        tokens = tokenize("#define M(a) \\\n  (a + 1)\nnext")
        assert tokens[0].kind is TokenKind.PREPROCESSOR
        assert "(a + 1)" in tokens[0].text
        assert tokens[1].text == "next"

    def test_hash_mid_line_is_punct(self):
        # Stringize operator inside macro body is not a directive start.
        tokens = tokenize("a # b")
        assert tokens[1].kind is TokenKind.PUNCT

    def test_directive_after_indent(self):
        tokens = tokenize("  #pragma once\nx")
        assert tokens[0].kind is TokenKind.PREPROCESSOR


class TestPunctuators:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a::b") == ["a", "::", "b"]

    def test_cuda_launch_brackets(self):
        assert "<<<" in texts("kernel<<<grid, block>>>(x)")
        assert ">>>" in texts("kernel<<<grid, block>>>(x)")

    def test_ellipsis(self):
        assert texts("f(...)") == ["f", "(", "...", ")"]

    def test_scope_vs_colon(self):
        assert texts("a::b:c") == ["a", "::", "b", ":", "c"]


class TestStrictMode:
    def test_strict_raises_on_garbage(self):
        with pytest.raises(LexError):
            tokenize("int `x;")

    def test_lenient_skips_garbage(self):
        tokens = tokenize("int `x;", strict=False)
        assert [token.text for token in tokens] == ["int", "x", ";"]

    def test_lex_error_carries_position(self):
        try:
            tokenize("ab\n `", filename="f.cc")
        except LexError as error:
            assert error.filename == "f.cc"
            assert error.line == 2
        else:
            pytest.fail("expected LexError")


class TestTokenHelpers:
    def test_is_punct(self):
        token = Token(TokenKind.PUNCT, "{", 1, 1)
        assert token.is_punct("{")
        assert not token.is_punct("}")

    def test_is_keyword(self):
        token = Token(TokenKind.KEYWORD, "if", 1, 1)
        assert token.is_keyword("if")
        assert not token.is_keyword("for")

    def test_is_identifier_any_and_specific(self):
        token = Token(TokenKind.IDENTIFIER, "foo", 1, 1)
        assert token.is_identifier()
        assert token.is_identifier("foo")
        assert not token.is_identifier("bar")
