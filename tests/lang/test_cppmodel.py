"""Tests for the fuzzy C++ structural model."""

import pytest

from repro.lang.cppmodel import parse_translation_unit


def unit_of(source, filename="test.cc"):
    return parse_translation_unit(source, filename)


class TestFunctionExtraction:
    def test_free_function(self):
        unit = unit_of("int add(int a, int b) { return a + b; }")
        function = unit.function("add")
        assert function.parameter_count == 2
        assert function.return_count == 1

    def test_function_declaration_not_counted(self):
        unit = unit_of("int add(int a, int b);")
        assert unit.functions == []

    def test_multiple_functions(self):
        unit = unit_of("void a() { }\nvoid b() { }\nvoid c() { }")
        assert [function.name for function in unit.functions] == \
            ["a", "b", "c"]

    def test_line_span(self):
        unit = unit_of("void f() {\n  int x = 0;\n  x++;\n}")
        function = unit.function("f")
        assert function.start_line == 1
        assert function.end_line == 4
        assert function.length_in_lines == 4

    def test_constructor_with_initializer_list(self):
        unit = unit_of(
            "class A {\n public:\n  A() : x_(1), y_(2) { }\n"
            " private:\n  int x_;\n  int y_;\n};")
        assert any(function.name == "A" for function in unit.functions)

    def test_destructor(self):
        unit = unit_of("class A {\n public:\n  ~A() { }\n};")
        assert any(function.name == "~A" for function in unit.functions)

    def test_operator_overload(self):
        unit = unit_of("struct V { V operator+(const V& o) { return o; } };")
        assert any(function.name == "operator+"
                   for function in unit.functions)

    def test_template_function(self):
        unit = unit_of("template <typename T>\nT clamp(T v) { return v; }")
        assert unit.function("clamp").parameter_count == 1

    def test_out_of_line_method_qualified(self):
        unit = unit_of("bool Foo::Check(int x) { return x > 0; }")
        function = unit.function("Check")
        assert function.class_name == "Foo"
        assert function.qualified_name == "Foo::Check"

    def test_static_function(self):
        unit = unit_of("static int helper(void) { return 1; }")
        assert unit.function("helper").is_static
        assert unit.function("helper").parameter_count == 0

    def test_trailing_const_and_noexcept(self):
        unit = unit_of(
            "class A {\n public:\n"
            "  int get() const noexcept { return 1; }\n};")
        assert any(function.name == "get" for function in unit.functions)

    def test_pure_virtual_not_a_definition(self):
        unit = unit_of(
            "class A {\n public:\n  virtual void run() = 0;\n};")
        assert unit.functions == []
        assert unit.classes[0].method_names == ["run"]


class TestComplexity:
    @pytest.mark.parametrize("body,expected", [
        ("", 1),
        ("if (x) { }", 2),
        ("if (x) { } else { }", 2),
        ("if (x && y) { }", 3),
        ("if (x || y || z) { }", 4),
        ("for (int i = 0; i < 9; i++) { }", 2),
        ("while (x) { }", 2),
        ("switch (x) { case 1: break; case 2: break; default: break; }", 3),
        ("int y = x ? 1 : 2;", 2),
        ("try { } catch (...) { }", 2),
        ("if (a) { if (b) { } }", 3),
    ])
    def test_decision_counting(self, body, expected):
        unit = unit_of(f"void f(int x) {{ {body} }}")
        assert unit.function("f").cyclomatic_complexity == expected

    def test_nesting_depth(self):
        unit = unit_of(
            "void f() { if (1) { if (2) { if (3) { } } } }")
        assert unit.function("f").max_nesting == 3


class TestBodyFacts:
    def test_call_collection(self):
        unit = unit_of("void f() { helper(); other(1, 2); }")
        assert unit.function("f").calls == ["helper", "other"]

    def test_allocation_detection(self):
        unit = unit_of(
            "void f(int n) {\n"
            "  float* a = (float*)malloc(n);\n"
            "  int* b = new int[n];\n"
            "  free(a);\n"
            "  delete[] b;\n}")
        function = unit.function("f")
        assert function.allocation_calls == 1
        assert function.deallocation_calls == 1
        assert function.new_expressions == 1
        assert function.delete_expressions == 1
        assert function.uses_dynamic_memory

    def test_goto_and_exit_points(self):
        unit = unit_of(
            "int f(int x) {\n"
            "  if (x < 0) return -1;\n"
            "  goto done;\n"
            "done:\n"
            "  return x;\n}")
        function = unit.function("f")
        assert function.goto_count == 1
        assert function.return_count == 2
        assert function.has_multiple_exits

    def test_single_exit_not_flagged(self):
        unit = unit_of("int f(int x) { return x; }")
        assert not unit.function("f").has_multiple_exits

    def test_kernel_launch_detection(self):
        unit = unit_of(
            "void f() { kernel<<<grid, block>>>(a, b); }")
        assert unit.function("f").kernel_launches == 1


class TestCudaQualifiers:
    def test_global_kernel(self):
        unit = unit_of("__global__ void k(float *p) { p[0] = 1.0f; }")
        function = unit.function("k")
        assert function.is_cuda_kernel
        assert function.is_gpu_code

    def test_device_function(self):
        unit = unit_of("__device__ float d(float x) { return x; }")
        assert unit.function("d").is_device_function

    def test_host_function_not_gpu(self):
        unit = unit_of("void h() { }")
        assert not unit.function("h").is_gpu_code


class TestClasses:
    def test_class_with_access_sections(self):
        unit = unit_of(
            "class C {\n public:\n  void a();\n  void b();\n"
            " private:\n  void c();\n  int field_;\n};")
        info = unit.classes[0]
        assert info.name == "C"
        assert info.public_method_names == ["a", "b"]
        assert info.method_names == ["a", "b", "c"]
        assert info.interface_size == 2

    def test_struct_default_public(self):
        unit = unit_of("struct S { void m(); };")
        assert unit.classes[0].public_method_names == ["m"]

    def test_forward_declaration_not_a_class(self):
        unit = unit_of("class Fwd;\nstruct S2;\n")
        assert unit.classes == []

    def test_inheritance_bases(self):
        unit = unit_of("class D : public Base1, private Base2 { };")
        assert "Base1" in unit.classes[0].bases
        assert "Base2" in unit.classes[0].bases

    def test_union_kind(self):
        unit = unit_of("union U { int i; float f; };")
        assert unit.classes[0].kind == "union"

    def test_qualified_name_in_namespace(self):
        unit = unit_of("namespace n { class C { }; }")
        assert unit.classes[0].qualified_name == "n::C"


class TestNamespacesAndGlobals:
    def test_nested_namespaces(self):
        unit = unit_of(
            "namespace a {\nnamespace b {\nvoid f() { }\n}\n}")
        assert unit.namespaces == ["a", "a::b"]
        assert unit.function("f").qualified_name == "a::b::f"

    def test_mutable_global(self):
        unit = unit_of("int g_count = 0;")
        assert len(unit.mutable_globals) == 1
        assert unit.mutable_globals[0].name == "g_count"

    def test_const_global_not_mutable(self):
        unit = unit_of("const float kPi = 3.14f;\nconstexpr int kN = 4;")
        assert unit.mutable_globals == []
        assert len(unit.globals) == 2

    def test_extern_global(self):
        unit = unit_of("extern int g_shared;")
        assert unit.globals[0].is_extern

    def test_local_variables_not_globals(self):
        unit = unit_of("void f() { int local = 1; }")
        assert unit.globals == []

    def test_class_members_not_globals(self):
        unit = unit_of("class C { int member_; };")
        assert unit.globals == []
        assert unit.classes[0].field_count == 1

    def test_enum_skipped_cleanly(self):
        unit = unit_of(
            "enum Color { RED, GREEN };\n"
            "enum class Mode : int { A, B };\n"
            "void after() { }")
        assert any(function.name == "after"
                   for function in unit.functions)

    def test_typedef_and_using_skipped(self):
        unit = unit_of(
            "typedef int Id;\nusing Name = float;\nvoid g() { }")
        assert unit.globals == []
        assert len(unit.functions) == 1

    def test_extern_c_block(self):
        unit = unit_of('extern "C" {\nvoid c_api(void) { }\n}')
        assert unit.function("c_api").name == "c_api"


class TestParameters:
    def test_pointer_reference_const(self):
        unit = unit_of(
            "void f(float* p, const int& r, int plain) { }")
        parameters = unit.function("f").parameters
        assert parameters[0].is_pointer
        assert parameters[1].is_reference
        assert parameters[1].is_const
        assert not parameters[2].is_pointer

    def test_void_parameter_list(self):
        unit = unit_of("void f(void) { }")
        assert unit.function("f").parameter_count == 0

    def test_template_parameter_types(self):
        unit = unit_of("void f(const std::vector<int>& v, int n) { }")
        assert unit.function("f").parameter_count == 2

    def test_parameter_names(self):
        unit = unit_of("void f(float alpha, int* counts) { }")
        names = [parameter.name
                 for parameter in unit.function("f").parameters]
        assert names == ["alpha", "counts"]


class TestBodyTokens:
    def test_body_tokens_bracketed(self):
        unit = unit_of("void f() { int x = 1; }")
        body = unit.body_tokens(unit.function("f"))
        assert body[0].text == "{"
        assert body[-1].text == "}"

    def test_function_lookup_error(self):
        unit = unit_of("void f() { }")
        with pytest.raises(KeyError):
            unit.function("missing")

    def test_cuda_functions_view(self):
        unit = unit_of(
            "__global__ void k() { }\nvoid h() { }")
        assert [function.name for function in unit.cuda_functions] == ["k"]
