"""Tests for directive-level preprocessor analysis."""

from repro.lang.preprocessor import summarize


class TestIncludes:
    def test_system_include(self):
        summary = summarize("#include <vector>\n")
        assert len(summary.includes) == 1
        include = summary.includes[0]
        assert include.target == "vector"
        assert include.system

    def test_local_include(self):
        summary = summarize('#include "module/header.h"\n')
        include = summary.includes[0]
        assert include.target == "module/header.h"
        assert not include.system

    def test_local_vs_system_partition(self):
        summary = summarize('#include <a>\n#include "b.h"\n#include <c>\n')
        assert [include.target for include in summary.system_includes] == \
            ["a", "c"]
        assert [include.target for include in summary.local_includes] == \
            ["b.h"]

    def test_malformed_include_ignored(self):
        summary = summarize("#include garbage\n")
        assert summary.includes == []
        assert len(summary.directives) == 1

    def test_include_line_numbers(self):
        summary = summarize("int x;\n#include <y>\n")
        assert summary.includes[0].line == 2


class TestMacros:
    def test_object_macro(self):
        summary = summarize("#define LIMIT 42\n")
        macro = summary.macros[0]
        assert macro.name == "LIMIT"
        assert not macro.is_function_like
        assert macro.body == "42"

    def test_function_like_macro(self):
        summary = summarize("#define SQ(x) ((x) * (x))\n")
        macro = summary.macros[0]
        assert macro.name == "SQ"
        assert macro.is_function_like
        assert macro.body == "((x) * (x))"

    def test_function_like_filter(self):
        summary = summarize("#define A 1\n#define B(x) x\n")
        assert [macro.name for macro in summary.function_like_macros] == \
            ["B"]

    def test_bare_define(self):
        summary = summarize("#define FLAG\n")
        macro = summary.macros[0]
        assert macro.name == "FLAG"
        assert macro.body == ""


class TestConditionals:
    def test_counts_all_conditional_forms(self):
        source = ("#ifdef A\n#elif defined(B)\n#endif\n"
                  "#ifndef C\n#endif\n#if X > 2\n#endif\n")
        summary = summarize(source)
        assert summary.conditionals == 4  # ifdef, elif, ifndef, if

    def test_endif_not_counted(self):
        summary = summarize("#ifdef A\n#endif\n")
        assert summary.conditionals == 1


class TestRobustness:
    def test_no_directives(self):
        summary = summarize("int main() { return 0; }\n")
        assert summary.includes == []
        assert summary.macros == []
        assert summary.conditionals == 0

    def test_directive_inside_code(self):
        source = "void f() {\n#ifdef DEBUG\n  log();\n#endif\n}\n"
        summary = summarize(source)
        assert summary.conditionals == 1
