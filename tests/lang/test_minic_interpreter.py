"""Tests for the MiniC tree-walking interpreter."""

import pytest

from repro.errors import (
    MiniCIndexError,
    MiniCNameError,
    MiniCRuntimeError,
    MiniCStepLimitExceeded,
    MiniCTypeError,
)
from repro.lang.minic import ArrayValue, Interpreter, ThreadContext, \
    parse_program


def run(source, function, *args, **kwargs):
    interpreter = Interpreter(parse_program(source), **kwargs)
    return interpreter.run(function, list(args))


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        source = "int f(int a, int b) { return a / b; }"
        assert run(source, "f", 7, 2) == 3
        assert run(source, "f", -7, 2) == -3
        assert run(source, "f", 7, -2) == -3

    def test_modulo_sign_follows_dividend(self):
        source = "int f(int a, int b) { return a % b; }"
        assert run(source, "f", 7, 3) == 1
        assert run(source, "f", -7, 3) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(MiniCRuntimeError):
            run("int f(int a) { return a / 0; }", "f", 1)

    def test_float_division(self):
        assert run("float f() { return 7.0f / 2.0f; }", "f") == 3.5

    def test_bitwise_operators(self):
        source = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert run(source, "f", 12, 10) == 12 | 10

    def test_shifts(self):
        assert run("int f(int a) { return a << 3; }", "f", 1) == 8
        assert run("int f(int a) { return a >> 2; }", "f", 9) == 2

    def test_unary_operators(self):
        assert run("int f(int a) { return -a; }", "f", 5) == -5
        assert run("int f(int a) { return !a; }", "f", 0) == 1
        assert run("int f(int a) { return ~a; }", "f", 0) == -1

    def test_comparison_yields_int(self):
        assert run("int f(int a) { return a > 2; }", "f", 3) == 1
        assert run("int f(int a) { return a > 2; }", "f", 1) == 0

    def test_int_coercion_on_declaration(self):
        assert run("int f() { int x = 2.9f; return x; }", "f") == 2

    def test_float_coercion_on_return(self):
        value = run("float f() { return 3; }", "f")
        assert isinstance(value, float)
        assert value == 3.0


class TestControlFlow:
    def test_if_else_branches(self):
        source = "int f(int x) { if (x > 0) { return 1; } return -1; }"
        assert run(source, "f", 5) == 1
        assert run(source, "f", -5) == -1

    def test_while_loop(self):
        source = ("int f(int n) { int s = 0; int i = 0; "
                  "while (i < n) { s += i; i++; } return s; }")
        assert run(source, "f", 5) == 10

    def test_do_while_runs_at_least_once(self):
        source = ("int f() { int c = 0; do { c++; } while (0); return c; }")
        assert run(source, "f") == 1

    def test_for_loop_with_continue(self):
        source = ("int f(int n) { int s = 0; "
                  "for (int i = 0; i < n; i++) { "
                  "if (i % 2 == 1) { continue; } s += i; } return s; }")
        assert run(source, "f", 6) == 0 + 2 + 4

    def test_break_leaves_loop(self):
        source = ("int f() { int i = 0; "
                  "while (1) { if (i >= 3) { break; } i++; } return i; }")
        assert run(source, "f") == 3

    def test_nested_loop_break_is_inner_only(self):
        source = ("int f() { int total = 0; "
                  "for (int i = 0; i < 3; i++) { "
                  "for (int j = 0; j < 10; j++) { "
                  "if (j >= 2) { break; } total++; } } return total; }")
        assert run(source, "f") == 6

    def test_switch_matching_case(self):
        source = ("int f(int x) { switch (x) { case 1: return 10; "
                  "case 2: return 20; default: return 0; } }")
        assert run(source, "f", 2) == 20
        assert run(source, "f", 9) == 0

    def test_switch_fallthrough(self):
        source = ("int f(int x) { int r = 0; switch (x) { "
                  "case 1: r += 1; case 2: r += 2; break; "
                  "default: r = 99; } return r; }")
        assert run(source, "f", 1) == 3
        assert run(source, "f", 2) == 2

    def test_switch_no_match_no_default(self):
        source = ("int f(int x) { int r = 5; switch (x) { "
                  "case 1: r = 1; break; } return r; }")
        assert run(source, "f", 7) == 5

    def test_ternary(self):
        source = "int f(int x) { return x > 0 ? x : -x; }"
        assert run(source, "f", -4) == 4

    def test_short_circuit_and_skips_rhs(self):
        source = ("int f(int x) { int hits = 0; "
                  "if (x > 0 && bump(hits) > 0) { } return hits; }"
                  "int bump(int h) { return h + 1; }")
        # bump's return feeds the condition but cannot mutate hits (pass
        # by value); the test only checks no crash on short-circuit.
        assert run(source, "f", 0) == 0


class TestArraysAndPointers:
    def test_array_declaration_and_indexing(self):
        source = ("int f() { int a[3]; a[0] = 4; a[2] = 8; "
                  "return a[0] + a[1] + a[2]; }")
        assert run(source, "f") == 12

    def test_array_out_of_bounds_raises(self):
        with pytest.raises(MiniCIndexError):
            run("int f() { int a[2]; return a[5]; }", "f")

    def test_negative_index_raises(self):
        with pytest.raises(MiniCIndexError):
            run("int f() { int a[2]; return a[-1]; }", "f")

    def test_list_argument_aliases(self):
        buffer = [1.0, 2.0]
        run("void f(float *p) { p[0] = 9.0f; }", "f", buffer)
        assert buffer[0] == 9.0

    def test_pointer_arithmetic_view(self):
        source = "float f(float *p, int k) { return (p + k)[0]; }"
        assert run(source, "f", [1.0, 2.0, 3.0], 2) == 3.0

    def test_pointer_passed_to_callee(self):
        source = ("void fill(float *p, int n) { "
                  "for (int i = 0; i < n; i++) { p[i] = 1.0f; } }"
                  "float f(float *p, int n) { fill(p, n); return p[n-1]; }")
        assert run(source, "f", [0.0] * 4, 4) == 1.0

    def test_array_initializer_list(self):
        source = "float f() { float a[3] = {5.0f, 6.0f}; return a[0] + a[1] + a[2]; }"
        assert run(source, "f") == 11.0

    def test_negative_array_size_raises(self):
        with pytest.raises(MiniCRuntimeError):
            run("void f(int n) { int a[n]; }", "f", -3)

    def test_subscript_on_scalar_raises(self):
        with pytest.raises(MiniCTypeError):
            run("int f(int x) { return x[0]; }", "f", 1)

    def test_array_value_view_semantics(self):
        buffer = ArrayValue([1, 2, 3, 4])
        view = buffer.shifted(2)
        assert len(view) == 2
        assert view.get(0) == 3
        view.set(1, 9)
        assert buffer.get(3) == 9


class TestFunctions:
    def test_recursion(self):
        source = ("int fact(int n) { if (n <= 1) { return 1; } "
                  "return n * fact(n - 1); }")
        assert run(source, "fact", 6) == 720

    def test_mutual_recursion(self):
        source = ("int is_even(int n) { if (n == 0) { return 1; } "
                  "return is_odd(n - 1); }"
                  "int is_odd(int n) { if (n == 0) { return 0; } "
                  "return is_even(n - 1); }")
        assert run(source, "is_even", 10) == 1

    def test_void_function_returns_none(self):
        assert run("void f() { int x = 1; }", "f") is None

    def test_wrong_arity_raises(self):
        with pytest.raises(MiniCTypeError):
            run("int f(int a) { return a; }", "f", 1, 2)

    def test_undefined_function_raises(self):
        with pytest.raises(MiniCNameError):
            run("int f() { return g(); }", "f")

    def test_undefined_variable_raises(self):
        with pytest.raises(MiniCNameError):
            run("int f() { return missing; }", "f")

    def test_globals_shared_between_calls(self):
        source = ("int g_counter = 0;"
                  "int bump() { g_counter = g_counter + 1; "
                  "return g_counter; }")
        program = parse_program(source)
        interpreter = Interpreter(program)
        assert interpreter.run("bump") == 1
        assert interpreter.run("bump") == 2

    def test_builtins(self):
        assert run("float f(float x) { return sqrtf(x); }", "f", 9.0) == 3.0
        assert run("float f(float x) { return fabsf(x); }", "f", -2.5) == 2.5
        assert run("float f(float a, float b) { return fmaxf(a, b); }",
                   "f", 1.0, 2.0) == 2.0

    def test_compound_assignment_operators(self):
        source = ("int f() { int x = 10; x += 5; x -= 3; x *= 2; "
                  "x /= 4; return x; }")
        assert run(source, "f") == 6

    def test_incdec_semantics(self):
        source = ("int f() { int x = 5; int a = x++; int b = ++x; "
                  "return a * 100 + b * 10 + x; }")
        # a = 5 (post), x -> 6, b = 7 (pre), x = 7
        assert run(source, "f") == 5 * 100 + 7 * 10 + 7


class TestSafetyLimits:
    def test_step_limit(self):
        source = "void f() { while (1) { } }"
        with pytest.raises(MiniCStepLimitExceeded):
            run(source, "f", max_steps=1000)

    def test_strict_uninitialized_read(self):
        source = "int f() { int x; return x; }"
        with pytest.raises(MiniCRuntimeError):
            run(source, "f", strict_uninitialized=True)

    def test_default_zero_initialization(self):
        assert run("int f() { int x; return x; }", "f") == 0

    def test_strict_mode_allows_write_then_read(self):
        source = "int f() { int x; x = 3; return x; }"
        assert run(source, "f", strict_uninitialized=True) == 3


class TestThreadContext:
    def test_kernel_builtins(self):
        source = ("__global__ void k(float *out) { "
                  "out[0] = blockIdx.x * blockDim.x + threadIdx.x; }")
        program = parse_program(source)
        interpreter = Interpreter(program)
        out = [0.0]
        context = ThreadContext(thread_idx=(3, 0, 0), block_idx=(2, 0, 0),
                                block_dim=(8, 1, 1))
        interpreter.run("k", [out], thread_context=context)
        assert out[0] == 19.0

    def test_builtin_outside_kernel_raises(self):
        source = "int f() { return threadIdx.x; }"
        with pytest.raises(MiniCRuntimeError):
            run(source, "f")

    def test_context_propagates_to_device_calls(self):
        source = ("__device__ int lane() { return threadIdx.x; }"
                  "__global__ void k(float *out) { out[0] = lane(); }")
        program = parse_program(source)
        interpreter = Interpreter(program)
        out = [0.0]
        interpreter.run("k", [out],
                        thread_context=ThreadContext(thread_idx=(5, 0, 0)))
        assert out[0] == 5.0
