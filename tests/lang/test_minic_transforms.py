"""Tests for the single-exit rewriter."""

import pytest

from repro.lang import parse_translation_unit
from repro.lang.minic import Interpreter, parse_program
from repro.lang.minic.transforms import to_single_exit


def transform(source):
    program = parse_program(source)
    text, report = to_single_exit(program)
    return program, parse_program(text), text, report


def behaviours_match(original, rewritten, function, argument_sets):
    for args in argument_sets:
        assert Interpreter(original).run(function, list(args)) == \
            Interpreter(rewritten).run(function, list(args)), args


GUARDED = """
int classify(int score) {
  if (score < 0) {
    return -1;
  }
  if (score > 100) {
    return 101;
  }
  int bucket = score / 10;
  return bucket;
}
"""


class TestSingleExit:
    def test_guard_returns_folded(self):
        original, rewritten, text, report = transform(GUARDED)
        assert report.transformed == ["classify"]
        assert text.count("return") == 1
        behaviours_match(original, rewritten, "classify",
                         [(-5,), (0,), (42,), (100,), (250,)])

    def test_multi_exit_metric_fixed(self):
        _, _, text, _ = transform(GUARDED)
        unit = parse_translation_unit(text, "rewritten.c")
        assert not unit.function("classify").has_multiple_exits

    def test_if_else_returns_folded(self):
        source = ("int sign(int x) { if (x >= 0) { return 1; } "
                  "else { return -1; } }")
        original, rewritten, text, report = transform(source)
        assert report.transformed == ["sign"]
        assert text.count("return") == 1
        behaviours_match(original, rewritten, "sign",
                         [(5,), (0,), (-5,)])

    def test_mutation_before_later_guard_preserved(self):
        # The rewrite must not re-evaluate earlier conditions after
        # mutations (the naive ternary rewrite gets this wrong).
        source = """
        int tricky(int x) {
          if (x > 10) {
            return 99;
          }
          x = x + 20;
          if (x > 10) {
            return x;
          }
          return 0;
        }
        """
        original, rewritten, text, report = transform(source)
        assert report.transformed == ["tricky"]
        behaviours_match(original, rewritten, "tricky",
                         [(-30,), (-15,), (0,), (5,), (11,), (50,)])

    def test_single_exit_function_untouched(self):
        source = "int f(int x) { int y = x + 1; return y; }"
        _, _, text, report = transform(source)
        assert report.transformed == []
        assert report.skipped == []

    def test_return_in_loop_skipped(self):
        source = ("int find(float *a, int n, float v) { "
                  "for (int i = 0; i < n; i++) { "
                  "if (a[i] == v) { return i; } } return -1; }")
        _, _, _, report = transform(source)
        assert report.skipped == ["find"]

    def test_void_function_skipped(self):
        source = ("void maybe(float *out, int n) { if (n < 1) { return; } "
                  "if (n > 100) { return; } out[0] = 1.0f; }")
        _, _, _, report = transform(source)
        assert report.skipped == ["maybe"]

    def test_dead_code_after_both_branch_return_dropped(self):
        source = ("int pick(int x) { if (x) { return 1; } "
                  "else { return 2; } }")
        original, rewritten, text, report = transform(source)
        assert report.transformed == ["pick"]
        behaviours_match(original, rewritten, "pick", [(0,), (1,)])

    def test_corpus_style_guard_pattern(self):
        """The exact shape the corpus generator plants."""
        source = """
        float evaluate(float input) {
          float score = 3.5f;
          int count = 12;
          if (count > 36) {
            return 0.0f;
          }
          if (score > 2.0f && score < 16.0f) {
            score = score * 1.5f;
          }
          return score;
        }
        """
        original, rewritten, text, report = transform(source)
        assert report.transformed == ["evaluate"]
        behaviours_match(original, rewritten, "evaluate",
                         [(1.0,), (2.0,)])

    def test_transformed_program_coverage_instrumentable(self):
        from repro.coverage import CoverageRunner, TestVector
        _, rewritten, text, _ = transform(GUARDED)
        runner = CoverageRunner(text, "rewritten.c")
        runner.run_suite([TestVector("classify", (-1,)),
                          TestVector("classify", (50,)),
                          TestVector("classify", (200,))])
        assert runner.coverage().statement_percent == 100.0
