"""Robustness tests: the fuzzy model on gnarly real-world C++ shapes.

The fuzzy layer must never crash and must keep producing sane structure
on modern C++ it does not fully model (lambdas, range-for, auto,
attributes, nested templates, macros mid-declaration).
"""

from repro.lang import parse_translation_unit


def parses(source):
    unit = parse_translation_unit(source, "hard.cc")
    assert unit.line_count >= 0
    return unit


class TestModernConstructs:
    def test_range_based_for(self):
        unit = parses(
            "void f(const std::vector<int>& items) {\n"
            "  int total = 0;\n"
            "  for (const auto& item : items) {\n"
            "    total += item;\n"
            "  }\n"
            "}")
        function = unit.function("f")
        assert function.cyclomatic_complexity == 2  # the for

    def test_lambda_in_body(self):
        unit = parses(
            "void f() {\n"
            "  auto square = [](int x) { return x * x; };\n"
            "  int nine = square(3);\n"
            "}")
        assert any(function.name == "f" for function in unit.functions)

    def test_lambda_at_namespace_scope(self):
        unit = parses("auto g_handler = [](int x) { return x + 1; };\n"
                      "void after() { }")
        assert any(function.name == "after"
                   for function in unit.functions)

    def test_attributes(self):
        unit = parses(
            "[[nodiscard]] int status() { return 0; }\n"
            "class [[deprecated]] Old { };")
        assert any(function.name == "status"
                   for function in unit.functions)
        assert any(info.name == "Old" for info in unit.classes)

    def test_nested_templates(self):
        unit = parses(
            "std::map<std::string, std::vector<std::pair<int, int>>> "
            "g_table;\n"
            "void use() { }")
        assert any(function.name == "use" for function in unit.functions)

    def test_function_returning_template(self):
        unit = parses(
            "std::vector<float> Collect(int n) {\n"
            "  std::vector<float> out;\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    out.push_back(i);\n"
            "  }\n"
            "  return out;\n"
            "}")
        function = unit.function("Collect")
        assert function.cyclomatic_complexity == 2

    def test_default_arguments(self):
        unit = parses("void f(int a, float b = 1.5f, int c = 3) { }")
        assert unit.function("f").parameter_count == 3

    def test_macro_between_declarations(self):
        unit = parses(
            "#define DISALLOW_COPY(T) T(const T&) = delete\n"
            "class Guarded {\n public:\n  DISALLOW_COPY(Guarded);\n"
            "  void Run();\n};")
        assert any(info.name == "Guarded" for info in unit.classes)

    def test_do_while(self):
        unit = parses(
            "void f(int n) { do { n--; } while (n > 0); }")
        assert unit.function("f").cyclomatic_complexity == 2

    def test_anonymous_namespace(self):
        unit = parses(
            "namespace {\nint g_hidden = 0;\nvoid helper() { }\n}")
        assert any(function.name == "helper"
                   for function in unit.functions)
        assert len(unit.mutable_globals) == 1

    def test_using_namespace_directive(self):
        unit = parses("using namespace std;\nvoid f() { }")
        assert any(function.name == "f" for function in unit.functions)

    def test_ternary_in_initializer(self):
        unit = parses("void f(int a) { int b = a > 0 ? a : -a; }")
        assert unit.function("f").cyclomatic_complexity == 2

    def test_multiline_string_concat(self):
        unit = parses('const char* kMessage = "line one "\n'
                      '                       "line two";\n'
                      "void f() { }")
        assert any(function.name == "f" for function in unit.functions)

    def test_stream_operators(self):
        unit = parses(
            'void Log(int value) { stream() << "v=" << value << "\\n"; }')
        assert unit.function("Log").cyclomatic_complexity == 1

    def test_bitfields(self):
        unit = parses("struct Flags { unsigned a : 1; unsigned b : 3; };")
        assert unit.classes[0].name == "Flags"

    def test_static_member_definition(self):
        unit = parses("int Counter::instances_ = 0;\nvoid f() { }")
        assert any(function.name == "f" for function in unit.functions)

    def test_enum_class_with_values(self):
        unit = parses(
            "enum class Mode : uint8_t { kAuto = 0, kManual = 1 };\n"
            "void f() { }")
        assert any(function.name == "f" for function in unit.functions)
        # Enumerators must not leak into globals.
        assert unit.globals == []

    def test_pathological_incomplete_file_no_crash(self):
        unit = parses("void f( {{{ ")
        assert unit.line_count >= 0

    def test_deeply_nested_braces(self):
        body = "{" * 30 + "int x = 0;" + "}" * 30
        unit = parses(f"void f() {body}")
        assert any(function.name == "f" for function in unit.functions)
