"""Edge-of-grammar lexer tests: hex floats, digit separators, and
maximal-munch boundaries for number literals.

These pin the corrected behaviors shipped with the fused-engine PR:
the previous lexer mis-lexed hexadecimal floating literals (``0x1p3``
became NUMBER + IDENTIFIER) and accepted malformed separator
placements (``0x'1'``, trailing ``'``) into a single NUMBER token.
"""

import pytest

from repro.checkers.misra import MisraChecker
from repro.errors import LexError
from repro.lang.cppmodel import parse_translation_unit
from repro.lang.lexer import Lexer, tokenize
from repro.lang.tokens import TokenKind


def shapes(source, strict=True):
    return [(token.kind.name, token.text)
            for token in Lexer(source, "<test>", strict=strict).tokenize()]


class TestHexFloats:
    @pytest.mark.parametrize("literal", [
        "0x1p3", "0x1P3", "0x1p+3", "0x1P-3", "0x1.8p-3", "0X.8p2",
        "0x1.p0", "0xA.Bp+1f", "0x1P+2f",
    ])
    def test_hex_float_is_one_number(self, literal):
        assert shapes(literal) == [("NUMBER", literal)]

    def test_hex_fraction_without_exponent(self):
        # Not valid C++ (a hex fraction requires an exponent) but a
        # lexer-level maximal munch keeps the digits together.
        assert shapes("0x1.8") == [("NUMBER", "0x1.8")]

    def test_p_without_digits_is_not_an_exponent(self):
        assert shapes("0x1p") == [("NUMBER", "0x1"), ("IDENTIFIER", "p")]
        assert shapes("0x1p-") == [("NUMBER", "0x1"), ("IDENTIFIER", "p"),
                                   ("PUNCT", "-")]

    def test_hex_float_in_expression(self):
        assert shapes("float f = 0x1.8p-3;") == [
            ("KEYWORD", "float"), ("IDENTIFIER", "f"), ("PUNCT", "="),
            ("NUMBER", "0x1.8p-3"), ("PUNCT", ";")]


class TestMaximalMunchEdges:
    def test_bare_hex_prefix_splits(self):
        assert shapes("0x") == [("NUMBER", "0"), ("IDENTIFIER", "x")]
        assert shapes("0x.p3") == [("NUMBER", "0"), ("IDENTIFIER", "x"),
                                   ("PUNCT", "."), ("IDENTIFIER", "p3")]

    def test_separator_must_sit_between_digits(self):
        # A separator directly after the 0x prefix is not part of the
        # number; the quote starts a character literal.
        assert shapes("0x'1'") == [("NUMBER", "0"), ("IDENTIFIER", "x"),
                                   ("CHAR", "'1'")]

    def test_trailing_separator_is_not_consumed(self):
        assert shapes("1'", strict=False) == [("NUMBER", "1"),
                                              ("CHAR", "'")]

    def test_range_like_double_dot(self):
        assert shapes("1..2") == [("NUMBER", "1."), ("NUMBER", ".2")]

    def test_second_dot_after_exponent_splits(self):
        assert shapes("1e5.2") == [("NUMBER", "1e5"), ("NUMBER", ".2")]
        assert shapes("1.2.3") == [("NUMBER", "1.2"), ("NUMBER", ".3")]

    def test_octal_with_separators_is_one_number(self):
        assert shapes("0'123'456") == [("NUMBER", "0'123'456")]

    def test_decimal_separators_with_suffix(self):
        assert shapes("1'000'000ull") == [("NUMBER", "1'000'000ull")]

    def test_member_access_still_splits(self):
        assert shapes("a.b") == [("IDENTIFIER", "a"), ("PUNCT", "."),
                                 ("IDENTIFIER", "b")]


class TestRecoveryPaths:
    def test_unterminated_raw_string_strict(self):
        with pytest.raises(LexError):
            Lexer('R"(abc', "<test>", strict=True).tokenize()

    def test_unterminated_raw_string_lenient(self):
        assert shapes('R"(abc', strict=False) == [("STRING", 'R"(abc')]

    def test_raw_string_with_embedded_quote(self):
        assert shapes('R"(a")" x') == [("STRING", 'R"(a")"'),
                                       ("IDENTIFIER", "x")]

    def test_line_continued_line_comment(self):
        tokens = tokenize("// a \\\nb\nc")
        assert [(t.kind.name, t.text) for t in tokens] == [
            ("COMMENT", "// a \\\nb"), ("IDENTIFIER", "c")]

    def test_positions_survive_batched_line_accounting(self):
        tokens = tokenize('auto s = R"(x\ny\nz)";\nint a;')
        int_token = next(t for t in tokens if t.text == "int")
        assert (int_token.line, int_token.column) == (4, 1)


class TestOctalSeparatorFinding:
    """The misra octal check sees through digit separators (M7.1)."""

    def _rules(self, source):
        unit = parse_translation_unit(source, "edge.cc")
        return {finding.rule
                for finding in MisraChecker().check_unit(unit).findings}

    def test_separated_octal_flagged(self):
        assert "M7.1" in self._rules("void f() { int x = 0'123'456; }")

    def test_separated_decimal_not_flagged(self):
        assert "M7.1" not in self._rules("void f() { int x = 1'000'000; }")

    def test_separated_hex_not_flagged(self):
        assert "M7.1" not in self._rules("void f() { int x = 0x1'2'3; }")
