"""Extended interpreter tests: output, globals init, edge semantics."""

import pytest

from repro.errors import MiniCRuntimeError, MiniCTypeError
from repro.lang.minic import ArrayValue, Interpreter, parse_program


class TestPrintf:
    def test_printf_captures_values(self):
        program = parse_program(
            'void report(int a, float b) { printf(a, b); }')
        interpreter = Interpreter(program)
        interpreter.run("report", [3, 2.5])
        assert interpreter.output == ["3 2.5"]

    def test_printf_returns_length(self):
        program = parse_program(
            "int f(int a) { return printf(a); }")
        interpreter = Interpreter(program)
        assert interpreter.run("f", [42]) == len("42")

    def test_empty_printf(self):
        program = parse_program("int f() { return printf(); }")
        assert Interpreter(program).run("f") == 0

    def test_output_accumulates(self):
        program = parse_program("void f(int a) { printf(a); printf(a); }")
        interpreter = Interpreter(program)
        interpreter.run("f", [1])
        interpreter.run("f", [2])
        assert interpreter.output == ["1", "1", "2", "2"]


class TestGlobalInitialization:
    def test_global_array(self):
        program = parse_program(
            "float g_table[4] = {1.0f, 2.0f};\n"
            "float lookup(int i) { return g_table[i]; }")
        interpreter = Interpreter(program)
        assert interpreter.run("lookup", [1]) == 2.0
        assert interpreter.run("lookup", [3]) == 0.0

    def test_global_initializer_expression(self):
        program = parse_program(
            "int g_limit = 4 * 8;\nint get() { return g_limit; }")
        assert Interpreter(program).run("get") == 32

    def test_global_writable_from_function(self):
        program = parse_program(
            "int g_mode = 0;\n"
            "void set_mode(int m) { g_mode = m; }\n"
            "int get_mode() { return g_mode; }")
        interpreter = Interpreter(program)
        interpreter.run("set_mode", [7])
        assert interpreter.run("get_mode") == 7

    def test_fresh_interpreter_resets_globals(self):
        program = parse_program(
            "int g_n = 1;\nvoid bump() { g_n++; }\n"
            "int get() { return g_n; }")
        first = Interpreter(program)
        first.run("bump")
        assert first.run("get") == 2
        assert Interpreter(program).run("get") == 1


class TestEdgeSemantics:
    def run(self, source, function, *args):
        return Interpreter(parse_program(source)).run(function, list(args))

    def test_comma_operator(self):
        assert self.run("int f(int a) { return (a = 2, a + 1); }",
                        "f", 0) == 3

    def test_chained_comparisons_are_left_assoc(self):
        # C semantics: (1 < 2) < 3  ->  1 < 3  ->  1.
        assert self.run("int f() { return 1 < 2 < 3; }", "f") == 1
        # (3 > 2) > 1  ->  1 > 1  ->  0.
        assert self.run("int f() { return 3 > 2 > 1; }", "f") == 0

    def test_logical_result_is_int(self):
        assert self.run("int f(int a, int b) { return (a && b) + 1; }",
                        "f", 5, 7) == 2

    def test_nested_ternary(self):
        source = ("int sign(int x) { return x > 0 ? 1 : x < 0 ? -1 : 0; }")
        assert self.run(source, "sign", 9) == 1
        assert self.run(source, "sign", -9) == -1
        assert self.run(source, "sign", 0) == 0

    def test_array_aliasing_through_two_views(self):
        program = parse_program(
            "void set(float *p, int i, float v) { p[i] = v; }")
        interpreter = Interpreter(program)
        buffer = [0.0] * 4
        view = ArrayValue(buffer, 2)
        interpreter.run("set", [view, 1, 9.0])
        assert buffer[3] == 9.0

    def test_pointer_difference(self):
        program = parse_program(
            "int gap(float *a, float *b) { return a - b; }")
        interpreter = Interpreter(program)
        buffer = [0.0] * 8
        assert interpreter.run("gap", [ArrayValue(buffer, 5),
                                       ArrayValue(buffer, 2)]) == 3

    def test_pointer_difference_unrelated_buffers_raises(self):
        program = parse_program(
            "int gap(float *a, float *b) { return a - b; }")
        interpreter = Interpreter(program)
        with pytest.raises(MiniCRuntimeError):
            interpreter.run("gap", [[0.0], [0.0]])

    def test_pointer_comparison(self):
        program = parse_program(
            "int same(float *a, float *b) { return a == b; }")
        interpreter = Interpreter(program)
        buffer = [0.0] * 2
        view = ArrayValue(buffer, 0)
        assert interpreter.run("same", [view, view]) == 1
        assert interpreter.run("same", [view, ArrayValue(buffer, 1)]) == 0

    def test_modulo_float_rejected(self):
        with pytest.raises(MiniCTypeError):
            self.run("float f(float a) { return a % 2.0f; }", "f", 5.0)

    def test_null_pointer_argument(self):
        program = parse_program(
            "int is_null(float *p) { if (p == 0) { return 1; } "
            "return 0; }")
        interpreter = Interpreter(program)
        assert interpreter.run("is_null", [None]) == 1

    def test_char_escape_values(self):
        assert self.run(r"int f() { return '\n'; }", "f") == 10
        assert self.run(r"int f() { return '\0'; }", "f") == 0

    def test_shadowing_semantics_function_scope(self):
        # MiniC uses function-level scoping (documented); an inner
        # declaration overwrites the outer binding.
        source = ("int f(int a) { int x = 1; "
                  "if (a) { int x = 2; } return x; }")
        assert self.run(source, "f", 1) == 2
        assert self.run(source, "f", 0) == 1
