"""Shared fixtures: a small deterministic corpus reused across tests."""

import pytest

from repro.corpus import apollo_spec, generate_corpus
from repro.core import assess_corpus

#: Scale small enough for fast tests, large enough that every statistic
#: (casts, globals, gotos, recursion) is non-degenerate.
TEST_SCALE = 0.04


@pytest.fixture(scope="session")
def small_corpus():
    return generate_corpus(apollo_spec(scale=TEST_SCALE))


@pytest.fixture(scope="session")
def small_assessment(small_corpus):
    return assess_corpus(small_corpus)
