"""Tests for the YOLO-lite DNN stack."""

import numpy as np
import pytest

from repro.dnn import (
    Box,
    ConvLayer,
    MaxPoolLayer,
    Network,
    RegionLayer,
    WeightStore,
    YoloConfig,
    YoloDetector,
    build_yolo_lite,
    iou,
    nms,
)
from repro.dnn.layers import ConvShape, GemmShape
from repro.dnn.tensor import im2col, output_size, sigmoid, softmax


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestTensorOps:
    def test_output_size(self):
        assert output_size(416, 3, 1, 1) == 416
        assert output_size(416, 2, 2, 0) == 208

    def test_im2col_shape(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        columns = im2col(images, 3, 1, 1)
        assert columns.shape == (2, 3 * 9, 64)

    def test_im2col_matches_manual_conv(self, rng):
        image = rng.normal(size=(1, 2, 5, 5))
        kernel = rng.normal(size=(4, 2, 3, 3))
        columns = im2col(image, 3, 1, 1)
        output = kernel.reshape(4, -1) @ columns[0]
        # Check one output element by direct convolution.
        # Output index 6 is (oh=1, ow=1); its receptive field in the
        # padded image is rows 1:4, cols 1:4.
        padded = np.pad(image[0], ((0, 0), (1, 1), (1, 1)))
        direct = np.sum(kernel[0] * padded[:, 1:4, 1:4])
        assert np.isclose(output[0, 6], direct)

    def test_im2col_rejects_bad_geometry(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 2, 2)), 5, 1, 0)

    def test_sigmoid_stability(self):
        values = np.array([-1000.0, 0.0, 1000.0])
        result = sigmoid(values)
        assert result[0] == pytest.approx(0.0)
        assert result[1] == pytest.approx(0.5)
        assert result[2] == pytest.approx(1.0)

    def test_softmax_sums_to_one(self, rng):
        x = rng.normal(size=(3, 5))
        assert np.allclose(softmax(x, axis=1).sum(axis=1), 1.0)


class TestLayers:
    def test_conv_layer_shapes(self, rng):
        layer = ConvLayer(weights=rng.normal(size=(8, 3, 3, 3)),
                          biases=np.zeros(8))
        x = rng.normal(size=(2, 3, 16, 16))
        assert layer.forward(x).shape == (2, 8, 16, 16)
        assert layer.output_shape(x.shape) == (2, 8, 16, 16)

    def test_conv_channel_mismatch_rejected(self, rng):
        layer = ConvLayer(weights=rng.normal(size=(8, 3, 3, 3)),
                          biases=np.zeros(8))
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 4, 8, 8)))

    def test_leaky_activation_applied(self, rng):
        weights = np.zeros((1, 1, 1, 1))
        weights[0, 0, 0, 0] = 1.0
        layer = ConvLayer(weights=weights, biases=np.zeros(1), pad=0,
                          activation="leaky")
        x = np.full((1, 1, 2, 2), -1.0)
        assert np.allclose(layer.forward(x), -0.1)

    def test_linear_activation_identity(self):
        weights = np.ones((1, 1, 1, 1))
        layer = ConvLayer(weights=weights, biases=np.zeros(1), pad=0,
                          activation="linear")
        x = np.full((1, 1, 2, 2), -1.0)
        assert np.allclose(layer.forward(x), -1.0)

    def test_batchnorm_all_or_none(self, rng):
        with pytest.raises(ValueError):
            ConvLayer(weights=rng.normal(size=(2, 1, 3, 3)),
                      biases=np.zeros(2), bn_scale=np.ones(2))

    def test_invalid_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            ConvLayer(weights=rng.normal(size=(2, 1, 3, 3)),
                      biases=np.zeros(2), activation="relu6")

    def test_maxpool(self):
        layer = MaxPoolLayer(size=2, stride=2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == 5.0
        assert out[0, 0, 1, 1] == 15.0

    def test_region_layer_activations(self, rng):
        layer = RegionLayer(anchors=[(1.0, 1.0)], classes=3)
        x = rng.normal(size=(1, 8, 2, 2))
        out = layer.forward(x).reshape(1, 1, 8, 2, 2)
        assert np.all((out[:, :, 0:2] >= 0) & (out[:, :, 0:2] <= 1))
        assert np.all((out[:, :, 4] >= 0) & (out[:, :, 4] <= 1))
        assert np.allclose(out[:, :, 5:].sum(axis=2), 1.0)

    def test_region_channel_validation(self, rng):
        layer = RegionLayer(anchors=[(1.0, 1.0)], classes=3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 7, 2, 2)))


class TestWorkloadShapes:
    def test_gemm_shape_flops(self):
        shape = GemmShape(m=64, n=100, k=27)
        assert shape.flops == 2 * 64 * 100 * 27
        assert shape.bytes_moved == 4 * (64 * 27 + 27 * 100 + 64 * 100)

    def test_conv_shape_as_gemm(self):
        conv = ConvShape(batch=1, in_channels=3, out_channels=16,
                         in_h=416, in_w=416, ksize=3, stride=1, pad=1)
        gemm = conv.as_gemm()
        assert gemm.m == 16
        assert gemm.k == 27
        assert gemm.n == 416 * 416
        assert conv.flops == gemm.flops  # batch 1

    def test_network_workloads(self):
        network = build_yolo_lite(YoloConfig(input_size=64, classes=2,
                                             width_multiple=0.25))
        workloads = network.conv_workloads()
        assert len(workloads) == 6  # 5 backbone + 1 head
        assert network.total_conv_flops == sum(w.flops for w in workloads)
        shapes = network.layer_shapes()
        assert len(shapes) == len(network.layers)


class TestNms:
    def test_iou_identical(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        assert iou(box, box) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert iou(Box(0.1, 0.1, 0.1, 0.1), Box(0.9, 0.9, 0.1, 0.1)) == 0.0

    def test_iou_symmetry(self):
        a = Box(0.4, 0.4, 0.3, 0.2)
        b = Box(0.5, 0.45, 0.25, 0.3)
        assert iou(a, b) == pytest.approx(iou(b, a))

    def test_nms_suppresses_overlap(self):
        boxes = [Box(0.5, 0.5, 0.2, 0.2, score=0.9, class_id=0),
                 Box(0.51, 0.5, 0.2, 0.2, score=0.8, class_id=0),
                 Box(0.9, 0.9, 0.1, 0.1, score=0.7, class_id=0)]
        kept = nms(boxes, threshold=0.45)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_nms_keeps_other_classes(self):
        boxes = [Box(0.5, 0.5, 0.2, 0.2, score=0.9, class_id=0),
                 Box(0.5, 0.5, 0.2, 0.2, score=0.8, class_id=1)]
        assert len(nms(boxes)) == 2

    def test_nms_invalid_threshold(self):
        with pytest.raises(ValueError):
            nms([], threshold=1.5)


class TestDetector:
    def test_end_to_end_detection(self):
        config = YoloConfig(input_size=64, classes=2, width_multiple=0.25)
        detector = YoloDetector(config, WeightStore(seed=11))
        image = WeightStore(seed=12).image(64, 64)
        boxes = detector.detect(image, objectness_threshold=0.3)
        for box in boxes:
            assert 0.0 <= box.score <= 1.0
            assert box.class_id in (0, 1)

    def test_deterministic_for_seed(self):
        config = YoloConfig(input_size=64, classes=2, width_multiple=0.25)
        image = WeightStore(seed=5).image(64, 64)
        first = YoloDetector(config, WeightStore(seed=3)).detect(image, 0.2)
        second = YoloDetector(config, WeightStore(seed=3)).detect(image, 0.2)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.score == pytest.approx(b.score)

    def test_network_input_validation(self):
        network = build_yolo_lite(YoloConfig(input_size=64, classes=2,
                                             width_multiple=0.25))
        with pytest.raises(ValueError):
            network.forward(np.zeros((1, 3, 32, 32)))

    def test_decode_channel_validation(self):
        detector = YoloDetector(YoloConfig(input_size=64, classes=2,
                                           width_multiple=0.25))
        with pytest.raises(ValueError):
            detector.decode(np.zeros((5, 2, 2)), 0.5, 0.45)
