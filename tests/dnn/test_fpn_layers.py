"""Tests for the upsample and route layers and routed networks."""

import numpy as np
import pytest

from repro.dnn import ConvLayer, MaxPoolLayer, Network, WeightStore
from repro.dnn.fpn_layers import RouteLayer, UpsampleLayer


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestUpsample:
    def test_nearest_neighbour_values(self):
        layer = UpsampleLayer(stride=2)
        x = np.arange(4.0).reshape(1, 1, 2, 2)
        out = layer.forward(x)
        assert out.shape == (1, 1, 4, 4)
        assert np.all(out[0, 0, :2, :2] == 0.0)
        assert np.all(out[0, 0, 2:, 2:] == 3.0)

    def test_output_shape(self):
        layer = UpsampleLayer(stride=3)
        assert layer.output_shape((2, 8, 5, 7)) == (2, 8, 15, 21)

    def test_stride_one_identity(self, rng):
        layer = UpsampleLayer(stride=1)
        x = rng.normal(size=(1, 2, 3, 3))
        assert np.array_equal(layer.forward(x), x)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            UpsampleLayer(stride=0)


class TestRoute:
    def test_concat_channels(self, rng):
        layer = RouteLayer([0, 1])
        a = rng.normal(size=(1, 3, 4, 4))
        b = rng.normal(size=(1, 5, 4, 4))
        out = layer.forward_from([a, b])
        assert out.shape == (1, 8, 4, 4)
        assert np.array_equal(out[:, :3], a)
        assert np.array_equal(out[:, 3:], b)

    def test_single_source_passthrough(self, rng):
        layer = RouteLayer([0])
        a = rng.normal(size=(1, 2, 3, 3))
        assert np.array_equal(layer.forward_from([a]), a)

    def test_spatial_mismatch_rejected(self, rng):
        layer = RouteLayer([0, 1])
        with pytest.raises(ValueError):
            layer.forward_from([rng.normal(size=(1, 2, 4, 4)),
                                rng.normal(size=(1, 2, 8, 8))])

    def test_future_source_rejected(self, rng):
        layer = RouteLayer([3])
        with pytest.raises(ValueError):
            layer.forward_from([rng.normal(size=(1, 2, 4, 4))])

    def test_direct_forward_refused(self, rng):
        with pytest.raises(RuntimeError):
            RouteLayer([0]).forward(rng.normal(size=(1, 1, 2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RouteLayer([])
        with pytest.raises(ValueError):
            RouteLayer([-1])

    def test_shape_from(self):
        layer = RouteLayer([0, 2])
        shapes = [(1, 4, 8, 8), (1, 9, 4, 4), (1, 6, 8, 8)]
        assert layer.shape_from(shapes) == (1, 10, 8, 8)


class TestRoutedNetwork:
    def build(self, rng):
        """A small YOLOv3-ish net: downsample, upsample, reuse, head."""
        store = WeightStore(seed=21)
        layers = [
            ConvLayer(store.conv_weights(8, 3, 3), store.biases(8)),   # 0
            MaxPoolLayer(2, 2),                                        # 1
            ConvLayer(store.conv_weights(16, 8, 3), store.biases(16)), # 2
            UpsampleLayer(2),                                          # 3
            RouteLayer([0, 3]),                                        # 4
            ConvLayer(store.conv_weights(4, 24, 1),                    # 5
                      store.biases(4), pad=0, activation="linear"),
        ]
        return Network(layers, input_shape=(1, 3, 16, 16))

    def test_forward_shapes(self, rng):
        network = self.build(rng)
        out = network.forward(rng.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 4, 16, 16)

    def test_static_shapes_match_runtime(self, rng):
        network = self.build(rng)
        shapes = network.layer_shapes()
        assert shapes[4] == (1, 16, 16, 16)  # input to the route
        assert shapes[5] == (1, 24, 16, 16)  # concat of 8 + 16 channels

    def test_conv_workloads_include_routed_conv(self, rng):
        network = self.build(rng)
        workloads = network.conv_workloads()
        assert len(workloads) == 3
        assert workloads[-1].conv.in_channels == 24
