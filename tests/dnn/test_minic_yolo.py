"""Tests for the MiniC YOLO modules and the Figure 5 coverage campaign."""

import pytest

from repro.coverage import CoverageRunner
from repro.dnn.minic_yolo import YOLO_FILES, run_yolo_coverage, \
    scenario_suite
from repro.lang.minic import parse_program


class TestSources:
    @pytest.mark.parametrize("filename", sorted(YOLO_FILES))
    def test_every_file_parses(self, filename):
        program = parse_program(YOLO_FILES[filename], filename)
        assert program.functions

    @pytest.mark.parametrize("filename", sorted(YOLO_FILES))
    def test_scenarios_pass(self, filename):
        runner = CoverageRunner(YOLO_FILES[filename], filename)
        outcomes = runner.run_suite(scenario_suite(filename))
        failures = [outcome for outcome in outcomes if not outcome.passed]
        assert failures == []

    def test_unknown_file_rejected(self):
        with pytest.raises(KeyError):
            scenario_suite("nonexistent.c")


class TestFunctionalCorrectness:
    def test_gemm_nn_matches_numpy(self):
        import numpy as np
        rng = np.random.default_rng(3)
        m, n, k = 3, 4, 5
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        c = np.zeros((m, n))
        runner = CoverageRunner(YOLO_FILES["gemm.c"], "gemm.c")
        flat_c = list(c.ravel())
        runner.interpreter.run("gemm_cpu",
                               [0, 0, m, n, k, 1.0, list(a.ravel()), k,
                                list(b.ravel()), n, 1.0, flat_c, n])
        assert np.allclose(np.array(flat_c).reshape(m, n), a @ b)

    def test_im2col_matches_reference(self):
        import numpy as np
        from repro.gpu.kernels.yolo_layers import im2col_reference
        rng = np.random.default_rng(4)
        image = rng.normal(size=(2, 5, 5))
        runner = CoverageRunner(YOLO_FILES["im2col.c"], "im2col.c")
        col = [0.0] * (2 * 9 * 25)
        runner.interpreter.run(
            "im2col_cpu", [list(image.ravel()), 2, 5, 5, 3, 1, 1, col])
        expected = im2col_reference(image, 3, 1, 1)
        assert np.allclose(np.array(col).reshape(expected.shape), expected)

    def test_box_iou_matches_python(self):
        from repro.dnn.nms import Box, iou
        runner = CoverageRunner(YOLO_FILES["box.c"], "box.c")
        a = [0.5, 0.5, 0.4, 0.3]
        b = [0.55, 0.52, 0.35, 0.4]
        got = runner.interpreter.run("box_iou", [a, b])
        expected = iou(Box(*a), Box(*b))
        assert got == pytest.approx(expected, rel=1e-6)

    def test_softmax_normalizes(self):
        runner = CoverageRunner(YOLO_FILES["region_layer.c"],
                                "region_layer.c")
        out = [0.0] * 4
        runner.interpreter.run("softmax", [[1.0, 2.0, 3.0, 4.0], 4, out])
        assert sum(out) == pytest.approx(1.0)
        assert out[3] > out[0]

    def test_maxpool_picks_maximum(self):
        runner = CoverageRunner(YOLO_FILES["maxpool_layer.c"],
                                "maxpool_layer.c")
        image = [float(v) for v in range(16)]
        out = [0.0] * 4
        runner.interpreter.run("forward_maxpool",
                               [image, out, 4, 4, 1, 2, 2, 0])
        assert out == [5.0, 7.0, 13.0, 15.0]


class TestCampaignShape:
    """The Figure 5 reproduction invariants (see EXPERIMENTS.md)."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return run_yolo_coverage()

    def test_all_files_measured(self, campaign):
        assert len(campaign.files) == len(YOLO_FILES)

    def test_metric_ordering_on_average(self, campaign):
        stmt = campaign.average("statement")
        branch = campaign.average("branch")
        mcdc = campaign.average("mcdc")
        assert stmt > branch > mcdc

    def test_averages_near_paper(self, campaign):
        # Paper: 83% / 75% / 61%.  Shape tolerance, not exact match.
        assert 70.0 <= campaign.average("statement") <= 93.0
        assert 60.0 <= campaign.average("branch") <= 88.0
        assert 45.0 <= campaign.average("mcdc") <= 78.0

    def test_minima_are_low(self, campaign):
        # Paper: 19% / 37% / 10% — some files are badly covered.
        assert campaign.minimum("statement") <= 45.0
        assert campaign.minimum("branch") <= 50.0
        assert campaign.minimum("mcdc") <= 35.0

    def test_coverage_incomplete_overall(self, campaign):
        assert campaign.average("statement") < 100.0

    def test_render_has_average_row(self, campaign):
        rendered = campaign.render()
        assert "AVERAGE" in rendered
        assert "gemm.c" in rendered

    def test_campaign_is_deterministic(self, campaign):
        again = run_yolo_coverage()
        assert [record.as_row() for record in again.files] == \
            [record.as_row() for record in campaign.files]
