"""Trend reporting and regression gating: ``repro-trends``.

Detector unit tests run over hand-built records; the end-to-end test
builds a real ledger from pipeline runs and injects a finding spike
with the fault harness, asserting the CI-gating non-zero exit.
"""

import json

import pytest

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.obs import RunLedger, build_run_record
from repro.obs.trends import (
    comparable_window,
    detect_regressions,
    finding_spikes,
    main,
    render_trends,
    stage_slowdowns,
    trends_document,
)
from repro.testing import Fault, FaultPlan, FaultyChecker

from .test_runlog import make_record


class TestDetectors:
    def test_finding_spike_fires(self):
        records = [make_record(run_id=f"r{i}",
                               findings={"MC.goto": 1})
                   for i in range(4)]
        records.append(make_record(run_id="spiked",
                                   findings={"MC.goto": 8}))
        spikes = finding_spikes(records)
        assert [s.subject for s in spikes] == ["MC.goto"]
        assert spikes[0].latest == 8 and spikes[0].median == 1
        assert spikes[0].run_id == "spiked"
        assert "REGRESSION [rule MC.goto]" in spikes[0].describe()

    def test_spike_needs_both_delta_and_factor(self):
        # +2 over a median of 20 is a big delta=no, factor=no case;
        # 20 -> 25 passes the delta but not the 2x factor
        history = [make_record(run_id=f"r{i}",
                               findings={"SG.x": 20}) for i in range(3)]
        assert finding_spikes(
            history + [make_record(run_id="l", findings={"SG.x": 25})]
        ) == []
        # a brand-new rule spiking from nothing fires
        assert finding_spikes(
            history + [make_record(run_id="l",
                                   findings={"SG.x": 20, "NEW.r": 5})])

    def test_single_record_no_regressions(self):
        assert detect_regressions([make_record()]) == []

    def test_stage_slowdown_fires(self):
        records = [make_record(run_id=f"r{i}",
                               stages={"parse": 0.1, "checkers": 0.2})
                   for i in range(3)]
        records.append(make_record(
            run_id="slow", stages={"parse": 0.4, "checkers": 0.2}))
        slow = stage_slowdowns(records)
        assert [s.subject for s in slow] == ["parse"]
        assert "stage parse" in slow[0].describe()

    def test_slowdown_absolute_floor_absorbs_noise(self):
        # 2x on a sub-millisecond stage is noise, not a regression
        records = [make_record(run_id=f"r{i}", stages={"parse": 0.001})
                   for i in range(3)]
        records.append(make_record(run_id="l", stages={"parse": 0.004}))
        assert stage_slowdowns(records) == []

    def test_comparable_window_resets_on_config_change(self):
        records = ([make_record(run_id=f"old{i}", config_fp="cfgA",
                                findings={"SG.x": 50})
                    for i in range(3)]
                   + [make_record(run_id=f"new{i}", config_fp="cfgB")
                      for i in range(2)])
        window = comparable_window(records)
        assert [r.run_id for r in window] == ["new0", "new1"]
        # the cfgA history cannot flag a spike against cfgB runs
        assert detect_regressions(records) == []


class TestRendering:
    def test_table_and_series(self):
        records = [make_record(run_id=f"run-{i}",
                               findings={"SG.x": i + 1})
                   for i in range(3)]
        text = render_trends(records, detect_regressions(records))
        assert "last 3 run(s)" in text
        assert "SG.x" in text and "1 2 3" in text
        assert "Stage seconds" in text
        assert "No regressions detected." in text

    def test_document_shape(self):
        records = [make_record(run_id=f"r{i}") for i in range(2)]
        document = trends_document(records, [])
        assert len(document["runs"]) == 2
        assert document["window"] == ["r0", "r1"]
        assert document["regressed"] is False

    def test_document_window_meta(self):
        records = ([make_record(run_id=f"old{i}", config_fp="cfgA")
                    for i in range(3)]
                   + [make_record(run_id=f"new{i}", config_fp="cfgB",
                                  rules_fp="prof1")
                      for i in range(2)])
        meta = trends_document(records, [])["window_meta"]
        assert meta["size"] == 5
        assert meta["matched"] == 2
        assert meta["config_fingerprint"] == "cfgB"
        assert meta["rules_fingerprint"] == "prof1"

    def test_console_output_has_no_meta(self, capsys):
        # the metadata is a --json addition; the table is unchanged
        records = [make_record(run_id=f"r{i}") for i in range(2)]
        text = render_trends(records, [])
        assert "window_meta" not in text
        assert "fingerprint" not in text


class TestMain:
    def _seed_ledger(self, directory, spiked=False):
        ledger = RunLedger(str(directory))
        for index in range(3):
            ledger.append(make_record(run_id=f"base-{index}",
                                      findings={"SG.x": 2}))
        if spiked:
            ledger.append(make_record(run_id="spike-run",
                                      findings={"SG.x": 9}))
        return ledger

    def test_clean_ledger_exits_0(self, tmp_path, capsys):
        self._seed_ledger(tmp_path)
        assert main(["--ledger", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "base-0" in out and "No regressions detected." in out

    def test_regression_exits_1(self, tmp_path, capsys):
        self._seed_ledger(tmp_path, spiked=True)
        assert main(["--ledger", str(tmp_path)]) == 1
        assert "REGRESSION [rule SG.x]" in capsys.readouterr().out

    def test_thresholds_are_flaggable(self, tmp_path):
        self._seed_ledger(tmp_path, spiked=True)
        assert main(["--ledger", str(tmp_path),
                     "--min-delta", "10"]) == 0

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["--ledger", str(tmp_path / "absent")]) == 2
        assert "cannot read run ledger" in capsys.readouterr().err

    def test_bad_last_exits_2(self, tmp_path, capsys):
        assert main(["--ledger", str(tmp_path), "--last", "0"]) == 2
        assert "--last" in capsys.readouterr().err

    def test_json_report_written(self, tmp_path, capsys):
        self._seed_ledger(tmp_path, spiked=True)
        report = tmp_path / "trends.json"
        assert main(["--ledger", str(tmp_path),
                     "--json", str(report)]) == 1
        document = json.loads(report.read_text())
        assert document["regressed"] is True
        assert document["regressions"][0]["subject"] == "SG.x"
        assert "trends JSON written" in capsys.readouterr().out

    def test_unwritable_json_exits_2(self, tmp_path, capsys):
        self._seed_ledger(tmp_path)
        blocker = tmp_path / "file.txt"
        blocker.write_text("x")
        assert main(["--ledger", str(tmp_path),
                     "--json", str(blocker / "t.json")]) == 2
        assert "cannot write trends JSON" in capsys.readouterr().err


class TestEndToEndSpike:
    def test_injected_crashes_spike_the_trend(self, tmp_path,
                                              small_corpus, capsys):
        """Two benign runs, then one with three injected checker
        crashes: ``internal.checker_crash`` spikes and gates CI."""
        sources = small_corpus.sources()
        targets = sorted(sources)[:3]
        ledger = RunLedger(str(tmp_path / "ledger"))

        def record_run(plan, run_id):
            # cache-less engine path (cache dir per run) so containment
            # is per unit: each fault becomes one crash finding
            cache = ResultCache(str(tmp_path / f"cache-{run_id}"))
            config = PipelineConfig(
                cache=cache, extra_checkers=(FaultyChecker(plan),))
            result = AssessmentPipeline(config).run(sources)
            exit_code = 3 if result.degraded else 0
            ledger.append(build_run_record(
                result, run_id=run_id, duration=0.5,
                exit_code=exit_code, config=config, cache=cache))
            return result

        for index in range(2):
            benign = record_run(FaultPlan(), f"benign-{index}")
            assert not benign.degraded
        faulted = record_run(
            FaultPlan([Fault(kind="raise", path=path)
                       for path in targets]), "faulted")
        assert faulted.degraded
        assert len(faulted.crashes) == 3

        assert main(["--ledger", str(tmp_path / "ledger")]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION [rule internal.checker_crash]" in out
        assert "3 finding(s) in run faulted" in out
