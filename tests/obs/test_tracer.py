"""Tests for the tracer and span primitives."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        reading = self.now
        self.now += self.step
        return reading


class TestSpanNesting:
    def test_parent_child_structure(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("pipeline"):
            with tracer.span("parse"):
                with tracer.span("parse_file", path="a.cc"):
                    pass
            with tracer.span("checkers"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "pipeline"
        assert [child.name for child in root.children] == \
            ["parse", "checkers"]
        assert root.children[0].children[0].attributes["path"] == "a.cc"
        assert root.children[0].children[0].parent is root.children[0]

    def test_sibling_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_current_tracks_stack(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_durations_and_self_time(self):
        # Each clock access advances 1s: open(0) open(1) close(2) close(3).
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration == pytest.approx(3.0)
        assert inner.duration == pytest.approx(1.0)
        assert outer.self_time == pytest.approx(2.0)
        assert inner.self_time == pytest.approx(1.0)

    def test_open_span_has_zero_duration(self):
        span = Span("open", start=5.0)
        assert span.duration == 0.0

    def test_set_attribute_inside_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("checker", name="casts") as span:
            span.set("findings", 7)
        assert tracer.roots[0].attributes == {"name": "casts",
                                              "findings": 7}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("exploding"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None  # closed despite the exception

    def test_walk_and_find(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.spans()) == 3
        assert len(tracer.find("b")) == 2

    def test_name_keyword_is_an_attribute(self):
        # span("checker", name=...) must not collide with the span name.
        tracer = Tracer(clock=FakeClock())
        with tracer.span("checker", name="misra"):
            pass
        assert tracer.roots[0].name == "checker"
        assert tracer.roots[0].attributes["name"] == "misra"

    def test_to_dict_round_trips(self):
        import json
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", kind="test"):
            with tracer.span("leaf"):
                pass
        document = json.loads(json.dumps(tracer.to_dict()))
        assert document["spans"][0]["name"] == "root"
        assert document["spans"][0]["children"][0]["name"] == "leaf"


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("pipeline") as span:
            span.set("units", 3)
            with tracer.span("inner"):
                pass
        assert tracer.roots == []
        assert tracer.spans() == []

    def test_metrics_are_swallowed(self):
        tracer = NullTracer()
        tracer.metrics.counter("a").inc(5)
        tracer.metrics.gauge("b").set(2)
        tracer.metrics.histogram("c").observe(1.0)
        assert tracer.metrics.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_context_is_shared(self):
        # Zero allocation on the disabled path: same object every call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", k=1)

    def test_exceptions_still_propagate(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError("boom")
