"""End-to-end telemetry: every instrumented layer emits what it should."""

import pytest

from repro.core import AssessmentPipeline, PipelineConfig
from repro.coverage.runner import CoverageRunner, TestVector
from repro.gpu.dim3 import Dim3
from repro.gpu.runtime import CudaRuntime, grid_for
from repro.lang.minic.interpreter import Interpreter
from repro.lang.minic.parser import parse_program
from repro.obs import Tracer

SOURCES = {
    "perception/detector.cc": """
int Detect(int* data, int n) {
  int total = 0;
  for (int i = 0; i < n; i++) {
    total += data[i];
  }
  return total;
}
""",
    "control/controller.cc": """
int Actuate(int command) {
  return (int)(command * 2);
}
""",
}

MINIC = """
int helper(int x) {
  return x + 1;
}
int work(int n) {
  int total = 0;
  for (int i = 0; i < n; i++) {
    total = total + helper(i);
  }
  return total;
}
"""

KERNEL = """
__global__ void scale(float *out, float *in, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * 2.0;
  }
}
"""


class TestPipelineTelemetry:
    @pytest.fixture(scope="class")
    def tracer(self):
        tracer = Tracer()
        config = PipelineConfig(tracer=tracer)
        AssessmentPipeline(config).run(SOURCES)
        return tracer

    def test_span_taxonomy_complete(self, tracer):
        names = {span.name for span in tracer.spans()}
        assert {"pipeline", "parse", "parse_file", "metrics",
                "measure_module", "checkers", "checker", "evidence",
                "compliance", "observations"} <= names

    def test_one_parse_file_span_per_source(self, tracer):
        spans = tracer.find("parse_file")
        assert {span.attributes["path"] for span in spans} == \
            set(SOURCES)

    def test_every_checker_by_name(self, tracer):
        names = {span.attributes["name"]
                 for span in tracer.find("checker")}
        assert names == {"language_subset", "casts", "defensive",
                         "globals", "naming", "style", "unit_design",
                         "architecture", "gpu_subset"}

    def test_checker_spans_carry_finding_counts(self, tracer):
        for span in tracer.find("checker"):
            assert isinstance(span.attributes["findings"], int)

    def test_core_counters(self, tracer):
        metrics = tracer.metrics
        assert metrics.counter_value("pipeline.units_parsed") == 2
        assert metrics.counter_value("pipeline.parse_failures") == 0
        assert metrics.counter_value("pipeline.modules_measured") == 2
        assert metrics.counter_value("checker.findings",
                                     checker="casts") >= 1

    def test_parse_histogram_populated(self, tracer):
        histogram = tracer.metrics.histogram("pipeline.parse_seconds")
        assert histogram.count == 2
        assert histogram.maximum > 0

    def test_spans_are_timed(self, tracer):
        root = tracer.find("pipeline")[0]
        assert root.duration > 0
        assert root.duration >= sum(child.duration
                                    for child in root.children) - 1e-9

    def test_parse_failures_counted(self):
        tracer = Tracer()
        sources = dict(SOURCES)
        config = PipelineConfig(tracer=tracer)
        import repro.core.pipeline as pipeline_module
        from repro.errors import ParseError
        real = pipeline_module.parse_translation_unit

        def flaky(source, path):
            if path.startswith("broken/"):
                raise ParseError("boom", path, 1, 1)
            return real(source, path)

        sources["broken/poison.cc"] = "int x;\n"
        original = pipeline_module.parse_translation_unit
        pipeline_module.parse_translation_unit = flaky
        try:
            AssessmentPipeline(config).run(sources)
        finally:
            pipeline_module.parse_translation_unit = original
        assert tracer.metrics.counter_value("pipeline.parse_failures") == 1
        failed = [span for span in tracer.find("parse_file")
                  if span.attributes.get("failed")]
        assert [span.attributes["path"] for span in failed] == \
            ["broken/poison.cc"]

    def test_default_pipeline_records_nothing(self):
        pipeline = AssessmentPipeline()
        pipeline.run(SOURCES)
        assert pipeline.tracer.enabled is False
        assert pipeline.tracer.roots == []


class TestInterpreterTelemetry:
    def test_steps_and_calls_counted(self):
        tracer = Tracer()
        interpreter = Interpreter(parse_program(MINIC, "m.c"),
                                  obs_metrics=tracer.metrics)
        assert interpreter.run("work", [5]) == 15
        metrics = tracer.metrics
        assert metrics.counter_value("interpreter.runs") == 1
        # work itself + 5 helper calls
        assert metrics.counter_value("interpreter.calls") == 6
        assert metrics.counter_value("interpreter.steps") > 10

    def test_counts_accumulate_across_runs(self):
        tracer = Tracer()
        interpreter = Interpreter(parse_program(MINIC, "m.c"),
                                  obs_metrics=tracer.metrics)
        interpreter.run("helper", [1])
        interpreter.run("helper", [2])
        assert tracer.metrics.counter_value("interpreter.runs") == 2
        assert tracer.metrics.counter_value("interpreter.calls") == 2

    def test_no_metrics_by_default(self):
        interpreter = Interpreter(parse_program(MINIC, "m.c"))
        assert interpreter.run("helper", [1]) == 2
        assert interpreter.obs_metrics is None


class TestGpuTelemetry:
    def test_launch_span_and_counters(self):
        tracer = Tracer()
        runtime = CudaRuntime(KERNEL, obs_tracer=tracer)
        data = [1.0, 2.0, 3.0, 4.0]
        d_in = runtime.to_device(data)
        d_out = runtime.cuda_malloc(len(data))
        record = runtime.launch("scale", grid_for(len(data), 2), Dim3(2),
                                [d_out, d_in, len(data)])
        assert runtime.cuda_memcpy_dtoh(d_out, len(data)) == \
            [2.0, 4.0, 6.0, 8.0]
        metrics = tracer.metrics
        assert metrics.counter_value("gpu.kernel_launches") == 1
        assert metrics.counter_value("gpu.threads_executed") == 4
        assert metrics.counter_value("gpu.memcpy_htod_elements") == 4
        assert metrics.counter_value("gpu.memcpy_dtoh_elements") == 4
        spans = tracer.find("kernel_launch")
        assert len(spans) == 1
        assert spans[0].attributes["kernel"] == "scale"
        assert spans[0].attributes["threads"] == 4
        assert record.duration > 0
        histogram = metrics.histogram("gpu.kernel_seconds",
                                      kernel="scale")
        assert histogram.count == 1

    def test_interpreter_metrics_flow_through_launch(self):
        tracer = Tracer()
        runtime = CudaRuntime(KERNEL, obs_tracer=tracer)
        d_in = runtime.to_device([1.0, 2.0])
        d_out = runtime.cuda_malloc(2)
        runtime.launch("scale", Dim3(1), Dim3(2), [d_out, d_in, 2])
        # one interpreter run per emulated thread
        assert tracer.metrics.counter_value("interpreter.runs") == 2

    def test_untraced_runtime_still_works(self):
        runtime = CudaRuntime(KERNEL)
        d_in = runtime.to_device([3.0])
        d_out = runtime.cuda_malloc(1)
        record = runtime.launch("scale", Dim3(1), Dim3(1),
                                [d_out, d_in, 1])
        assert runtime.cuda_memcpy_dtoh(d_out, 1) == [6.0]
        assert record.duration == 0.0


class TestCoverageRunnerTelemetry:
    def test_vectors_and_failures_counted(self):
        tracer = Tracer()
        runner = CoverageRunner(MINIC, obs_tracer=tracer)
        runner.run_suite([
            TestVector(function="helper", args=(1,), expected=2),
            TestVector(function="helper", args=(1,), expected=999),
            TestVector(function="nonexistent"),
        ])
        metrics = tracer.metrics
        assert metrics.counter_value("coverage.vectors_run") == 3
        assert metrics.counter_value("coverage.vector_failures") == 2
        spans = tracer.find("run_vector")
        assert len(spans) == 3
        assert [span.attributes["passed"] for span in spans] == [1, 0, 0]
        # run() flushes counters even when the call raises
        assert metrics.counter_value("interpreter.runs") == 3

    def test_outcomes_unchanged_with_telemetry(self):
        plain = CoverageRunner(MINIC)
        traced = CoverageRunner(MINIC, obs_tracer=Tracer())
        vectors = [TestVector(function="work", args=(4,), expected=10)]
        assert [o.passed for o in plain.run_suite(vectors)] == \
            [o.passed for o in traced.run_suite(vectors)]
