"""Tests for the trace/metrics exporters and the profile view."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    hotspots,
    render_hotspots,
    render_profile,
    render_prometheus,
    render_self_time,
    render_span_tree,
    self_time_by_name,
    top_spans,
    trace_document,
)
from .test_tracer import FakeClock


def _sample_tracer():
    tracer = Tracer(clock=FakeClock(step=0.5))
    with tracer.span("pipeline"):
        with tracer.span("parse") as parse:
            with tracer.span("parse_file", path="a.cc"):
                pass
            parse.set("files", 1)
        with tracer.span("checker", name="casts") as checker:
            checker.set("findings", 3)
    tracer.metrics.counter("pipeline.units_parsed").inc(1)
    tracer.metrics.counter("checker.findings", checker="casts").inc(3)
    tracer.metrics.gauge("gpu.bytes_allocated").set(64)
    tracer.metrics.histogram("pipeline.parse_seconds").observe(0.5)
    return tracer


class TestSpanTree:
    def test_contains_every_span_with_times(self):
        rendered = render_span_tree(_sample_tracer())
        assert "pipeline" in rendered
        assert "parse_file path=a.cc" in rendered
        assert "checker name=casts" in rendered
        assert "[findings=3]" in rendered
        assert "total" in rendered and "self" in rendered
        # every data line carries two time columns
        for line in rendered.splitlines()[2:]:
            assert line.count("ms") + line.count("s ") >= 2

    def test_indentation_reflects_depth(self):
        lines = render_span_tree(_sample_tracer()).splitlines()
        pipeline = next(l for l in lines if l.endswith("pipeline"))
        parse_file = next(l for l in lines if "parse_file" in l)
        assert parse_file.index("parse_file") > pipeline.index("pipeline")


class TestProfile:
    def test_top_spans_sorted_by_self_time(self):
        tracer = _sample_tracer()
        spans = top_spans(tracer, limit=3)
        assert len(spans) == 3
        assert spans[0].self_time >= spans[1].self_time \
            >= spans[2].self_time

    def test_limit_respected(self):
        assert len(top_spans(_sample_tracer(), limit=2)) == 2

    def test_render_profile(self):
        rendered = render_profile(_sample_tracer(), limit=2)
        assert rendered.startswith("Top 2 spans by self time")
        assert "share" in rendered
        assert "%" in rendered

    def test_self_time_by_name_attributes_every_second(self):
        tracer = _sample_tracer()
        totals = self_time_by_name(tracer)
        assert totals["parse_file"]["count"] == 1
        # exclusive attribution: per-name totals sum to the traced time
        assert sum(entry["seconds"] for entry in totals.values()) == \
            sum(span.self_time for span in tracer.spans())

    def test_render_self_time(self):
        rendered = render_self_time(_sample_tracer(), limit=3)
        assert rendered.startswith("Self time by span name")
        assert "parse_file" in rendered and "count" in rendered

    def test_hotspots_rank_files_and_checkers(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("pipeline"):
            with tracer.span("parse_file", path="slow.cc"):
                with tracer.span("parse_file", path="slow.cc"):
                    pass
            with tracer.span("parse_file", path="fast.cc"):
                pass
            with tracer.span("checker", name="style"):
                pass
        table = hotspots(tracer, limit=2)
        assert [row["path"] for row in table["files"]] == \
            ["slow.cc", "fast.cc"]
        assert table["files"][0]["seconds"] > \
            table["files"][1]["seconds"]
        assert table["checkers"] == [{"checker": "style",
                                      "seconds": 0.5}]
        rendered = render_hotspots(tracer, limit=2)
        assert "slowest files x checkers" in rendered
        assert "slow.cc" in rendered and "style" in rendered

    def test_hotspots_empty_trace(self):
        table = hotspots(Tracer())
        assert table == {"files": [], "checkers": []}
        rendered = render_hotspots(Tracer())
        assert "(no parse_file spans recorded)" in rendered
        assert "(no checker spans recorded)" in rendered


class TestChromeTrace:
    def test_events_match_spans(self):
        tracer = _sample_tracer()
        events = chrome_trace(tracer)
        assert len(events) == len(tracer.spans())
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        names = {event["name"] for event in events}
        assert "checker name=casts" in names

    def test_timestamps_relative_to_first_span(self):
        events = chrome_trace(_sample_tracer())
        assert min(event["ts"] for event in events) == 0

    def test_empty_tracer(self):
        assert chrome_trace(Tracer()) == []

    def test_grafted_worker_forests_get_own_tid(self):
        from repro.core.parallel import graft_worker_trace
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("pipeline"):
            with tracer.span("parse"):
                pass
        parse = tracer.find("parse")[0]
        for index in range(2):
            worker = Tracer(clock=FakeClock(step=0.5))
            with worker.span("parse_worker", worker=index):
                with worker.span("parse_file", path=f"{index}.cc"):
                    pass
            graft_worker_trace(tracer, parse, worker)
        events = chrome_trace(tracer)
        assert len(events) == len(tracer.spans())  # no metadata events
        by_cat = {}
        for event in events:
            by_cat.setdefault(event["cat"], []).append(event["tid"])
        # worker N renders on track tid + 1 + N ...
        assert sorted(by_cat["parse_worker"]) == [2, 3]
        # ... its children inherit that track ...
        assert sorted(by_cat["parse_file"]) == [2, 3]
        # ... and the main flow stays on the base track
        assert by_cat["pipeline"] == [1] and by_cat["parse"] == [1]

    def test_untagged_worker_span_stays_on_parent_track(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("checker_worker"):  # no worker attribute
            pass
        assert chrome_trace(tracer)[0]["tid"] == 1

    def test_document_is_json_serializable(self):
        document = trace_document(_sample_tracer())
        decoded = json.loads(json.dumps(document))
        assert decoded["spans"][0]["name"] == "pipeline"
        assert decoded["metrics"]["counters"]["pipeline.units_parsed"] == 1
        assert decoded["traceEvents"]


class TestPrometheus:
    def test_counters_gauges_histograms(self):
        text = render_prometheus(_sample_tracer())
        assert "# TYPE repro_pipeline_units_parsed counter" in text
        assert "repro_pipeline_units_parsed 1" in text
        assert 'repro_checker_findings{checker="casts"} 3' in text
        assert "# TYPE repro_gpu_bytes_allocated gauge" in text
        assert "repro_pipeline_parse_seconds_count 1" in text
        assert 'quantile="0.95"' in text
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with/chars").inc()
        text = render_prometheus(registry)
        assert "repro_weird_name_with_chars 1" in text
