"""Tests for the trace/metrics exporters and the profile view."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    render_profile,
    render_prometheus,
    render_span_tree,
    top_spans,
    trace_document,
)
from .test_tracer import FakeClock


def _sample_tracer():
    tracer = Tracer(clock=FakeClock(step=0.5))
    with tracer.span("pipeline"):
        with tracer.span("parse") as parse:
            with tracer.span("parse_file", path="a.cc"):
                pass
            parse.set("files", 1)
        with tracer.span("checker", name="casts") as checker:
            checker.set("findings", 3)
    tracer.metrics.counter("pipeline.units_parsed").inc(1)
    tracer.metrics.counter("checker.findings", checker="casts").inc(3)
    tracer.metrics.gauge("gpu.bytes_allocated").set(64)
    tracer.metrics.histogram("pipeline.parse_seconds").observe(0.5)
    return tracer


class TestSpanTree:
    def test_contains_every_span_with_times(self):
        rendered = render_span_tree(_sample_tracer())
        assert "pipeline" in rendered
        assert "parse_file path=a.cc" in rendered
        assert "checker name=casts" in rendered
        assert "[findings=3]" in rendered
        assert "total" in rendered and "self" in rendered
        # every data line carries two time columns
        for line in rendered.splitlines()[2:]:
            assert line.count("ms") + line.count("s ") >= 2

    def test_indentation_reflects_depth(self):
        lines = render_span_tree(_sample_tracer()).splitlines()
        pipeline = next(l for l in lines if l.endswith("pipeline"))
        parse_file = next(l for l in lines if "parse_file" in l)
        assert parse_file.index("parse_file") > pipeline.index("pipeline")


class TestProfile:
    def test_top_spans_sorted_by_self_time(self):
        tracer = _sample_tracer()
        spans = top_spans(tracer, limit=3)
        assert len(spans) == 3
        assert spans[0].self_time >= spans[1].self_time \
            >= spans[2].self_time

    def test_limit_respected(self):
        assert len(top_spans(_sample_tracer(), limit=2)) == 2

    def test_render_profile(self):
        rendered = render_profile(_sample_tracer(), limit=2)
        assert rendered.startswith("Top 2 spans by self time")
        assert "share" in rendered
        assert "%" in rendered


class TestChromeTrace:
    def test_events_match_spans(self):
        tracer = _sample_tracer()
        events = chrome_trace(tracer)
        assert len(events) == len(tracer.spans())
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        names = {event["name"] for event in events}
        assert "checker name=casts" in names

    def test_timestamps_relative_to_first_span(self):
        events = chrome_trace(_sample_tracer())
        assert min(event["ts"] for event in events) == 0

    def test_empty_tracer(self):
        assert chrome_trace(Tracer()) == []

    def test_document_is_json_serializable(self):
        document = trace_document(_sample_tracer())
        decoded = json.loads(json.dumps(document))
        assert decoded["spans"][0]["name"] == "pipeline"
        assert decoded["metrics"]["counters"]["pipeline.units_parsed"] == 1
        assert decoded["traceEvents"]


class TestPrometheus:
    def test_counters_gauges_histograms(self):
        text = render_prometheus(_sample_tracer())
        assert "# TYPE repro_pipeline_units_parsed counter" in text
        assert "repro_pipeline_units_parsed 1" in text
        assert 'repro_checker_findings{checker="casts"} 3' in text
        assert "# TYPE repro_gpu_bytes_allocated gauge" in text
        assert "repro_pipeline_parse_seconds_count 1" in text
        assert 'quantile="0.95"' in text
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with/chars").inc()
        text = render_prometheus(registry)
        assert "repro_weird_name_with_chars 1" in text
