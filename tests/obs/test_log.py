"""Structured event log: schema, levels, grafting, pipeline wiring.

The log's contract mirrors the tracer's: zero-cost when disabled
(pinned by the byte-identical suites), JSONL with run/seq correlation
when enabled, and worker-side buffers grafted back by the parent
exactly like worker span forests.
"""

import io
import json

import pytest

from repro.core import AssessmentPipeline, PipelineConfig
from repro.core.cli import main
from repro.obs import LEVELS, NULL_LOG, BufferLog, EventLog, NullLog
from repro.testing import Fault, FaultPlan, FaultyChecker


def read_events(stream: io.StringIO):
    return [json.loads(line) for line in
            stream.getvalue().splitlines() if line]


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        self.now += 0.5
        return self.now


class TestEventLog:
    def test_jsonl_schema_and_sequencing(self):
        stream = io.StringIO()
        log = EventLog(stream, level="info", run_id="abc123",
                       clock=FakeClock())
        log.info("run.start", files=3, jobs=2)
        log.error("checker.crash", checker="style")
        first, second = read_events(stream)
        assert first == {"ts": 100.5, "run": "abc123", "seq": 0,
                         "level": "info", "event": "run.start",
                         "files": 3, "jobs": 2}
        assert second["seq"] == 1
        assert second["level"] == "error"
        assert second["checker"] == "style"

    def test_level_filtering_drops_below_threshold(self):
        stream = io.StringIO()
        log = EventLog(stream, level="warning")
        log.debug("noise")
        log.info("noise")
        log.warning("kept.warning")
        log.error("kept.error")
        events = read_events(stream)
        assert [e["event"] for e in events] == ["kept.warning",
                                                "kept.error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLog(io.StringIO(), level="verbose")
        log = EventLog(io.StringIO())
        with pytest.raises(ValueError):
            log.emit("loud", "boom")

    def test_levels_are_ordered(self):
        assert (LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
                < LEVELS["error"])

    def test_graft_restamps_and_refilters(self):
        buffer = BufferLog(worker=3, clock=FakeClock(50.0))
        buffer.debug("worker.parse", files=7)
        buffer.error("checker.crash", checker="style")
        assert all(e["worker"] == 3 for e in buffer.events)

        stream = io.StringIO()
        parent = EventLog(stream, level="warning", run_id="parent-run")
        parent.warning("local.first")
        parent.graft(buffer.events)
        events = read_events(stream)
        # the debug worker event was filtered by the parent's level
        assert [e["event"] for e in events] == ["local.first",
                                                "checker.crash"]
        grafted = events[1]
        assert grafted["run"] == "parent-run"
        assert grafted["seq"] == 1
        assert grafted["worker"] == 3
        assert grafted["ts"] == 51.0  # worker-side timestamp kept

    def test_graft_tolerates_none_and_empty(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.graft(None)
        log.graft([])
        assert stream.getvalue() == ""

    def test_null_log_is_inert(self):
        assert NULL_LOG.enabled is False
        assert isinstance(NULL_LOG, NullLog)
        NULL_LOG.debug("x")
        NULL_LOG.info("x")
        NULL_LOG.warning("x")
        NULL_LOG.error("x")
        NULL_LOG.graft([{"level": "error", "event": "x"}])

    def test_buffer_log_is_picklable(self):
        import pickle
        buffer = BufferLog(worker=1)
        buffer.info("worker.check", units=4)
        events = pickle.loads(pickle.dumps(buffer.events))
        assert events == buffer.events


class TestPipelineEvents:
    def test_run_start_and_finish(self, small_corpus):
        stream = io.StringIO()
        result = AssessmentPipeline(PipelineConfig(
            log=EventLog(stream))).run(small_corpus.sources())
        events = read_events(stream)
        assert events[0]["event"] == "run.start"
        assert events[0]["files"] == len(small_corpus.sources())
        finish = events[-1]
        assert finish["event"] == "run.finish"
        assert finish["units"] == result.unit_count
        assert finish["degraded"] is False
        assert "run.degraded" not in {e["event"] for e in events}

    def test_parse_failure_event(self, monkeypatch):
        from repro.core import pipeline as pipeline_module
        from repro.errors import ParseError
        real = pipeline_module.parse_translation_unit

        def flaky(source, path):
            if path.startswith("broken/"):
                raise ParseError("boom", path, 1, 1)
            return real(source, path)

        monkeypatch.setattr(pipeline_module, "parse_translation_unit",
                            flaky)
        from repro.obs import Tracer
        stream = io.StringIO()
        tracer = Tracer()
        AssessmentPipeline(PipelineConfig(
            log=EventLog(stream), tracer=tracer)).run(
            {"a.cc": "int x;\n", "broken/poison.cc": "int y;\n"})
        events = read_events(stream)
        failures = [e for e in events if e["event"] == "parse.failure"]
        assert len(failures) == 1
        assert failures[0]["path"] == "broken/poison.cc"
        assert failures[0]["level"] == "warning"
        # the event's span id resolves to the traced parse span
        assert failures[0]["span"] == tracer.find("parse")[0].id

    def test_checker_crash_and_degraded_events(self, small_corpus):
        sources = small_corpus.sources()
        target = sorted(sources)[0]
        plan = FaultPlan([Fault(kind="raise", path=target)])
        stream = io.StringIO()
        result = AssessmentPipeline(PipelineConfig(
            log=EventLog(stream),
            extra_checkers=(FaultyChecker(plan),))).run(sources)
        assert result.degraded
        events = read_events(stream)
        crashes = [e for e in events if e["event"] == "checker.crash"]
        assert crashes and crashes[0]["checker"] == "fault_injector"
        assert crashes[0]["level"] == "error"
        assert any(e["event"] == "run.degraded" for e in events)
        assert read_events(stream)[-1]["degraded"] is True

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_events_grafted(self, small_corpus, executor):
        sources = small_corpus.sources()
        stream = io.StringIO()
        AssessmentPipeline(PipelineConfig(
            log=EventLog(stream, level="debug", run_id="fan-out"),
            jobs=2, executor=executor)).run(sources)
        events = read_events(stream)
        parse_chunks = [e for e in events
                        if e["event"] == "worker.parse"]
        check_chunks = [e for e in events
                        if e["event"] == "worker.check"]
        assert {e["worker"] for e in parse_chunks} == {0, 1}
        assert {e["worker"] for e in check_chunks} == {0, 1}
        assert sum(e["files"] for e in parse_chunks) == len(sources)
        # grafted events carry the parent's run id and sequencing
        assert all(e["run"] == "fan-out" for e in events)
        assert [e["seq"] for e in events] == list(range(len(events)))

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_worker_crash_event_grafted(self, small_corpus, executor):
        sources = small_corpus.sources()
        target = sorted(sources)[0]
        plan = FaultPlan([Fault(kind="raise", path=target)])
        stream = io.StringIO()
        result = AssessmentPipeline(PipelineConfig(
            log=EventLog(stream), jobs=2, executor=executor,
            extra_checkers=(FaultyChecker(plan),))).run(sources)
        assert result.degraded
        crashes = [e for e in read_events(stream)
                   if e["event"] == "checker.crash"]
        assert len(crashes) == 1
        assert crashes[0]["path"] == target
        assert "worker" in crashes[0]  # buffered inside a worker chunk


class TestCliLogFlags:
    def test_log_json_written(self, tmp_path, capsys):
        log_file = tmp_path / "events.jsonl"
        assert main(["--corpus", "0.02",
                     "--log-json", str(log_file)]) == 0
        out = capsys.readouterr().out
        assert f"event log written to {log_file}" in out
        events = [json.loads(line) for line in
                  log_file.read_text().splitlines()]
        assert events[0]["event"] == "run.start"
        assert events[-1]["event"] == "run.finish"
        run_ids = {e["run"] for e in events}
        assert len(run_ids) == 1 and len(run_ids.pop()) == 12

    def test_log_level_filters_cli_events(self, tmp_path):
        log_file = tmp_path / "events.jsonl"
        assert main(["--corpus", "0.02", "--log-json", str(log_file),
                     "--log-level", "error"]) == 0
        assert log_file.read_text() == ""  # clean run: nothing at error

    def test_log_level_requires_log_json(self, capsys):
        assert main(["--corpus", "0.02", "--log-level", "debug"]) == 2
        assert "--log-json" in capsys.readouterr().err

    def test_unwritable_log_json_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file.txt"
        blocker.write_text("not a directory")
        assert main(["--corpus", "0.02",
                     "--log-json", str(blocker / "events.jsonl")]) == 2
        assert "cannot open event log" in capsys.readouterr().err
