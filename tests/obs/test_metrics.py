"""Tests for counters, gauges, and streaming histograms."""

import math
import random

import pytest

from repro.obs import Histogram, MetricsRegistry, NullMetricsRegistry


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("pipeline.units_parsed")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter_value("pipeline.units_parsed") == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_labels_distinguish(self):
        registry = MetricsRegistry()
        registry.counter("checker.findings", checker="casts").inc(2)
        registry.counter("checker.findings", checker="misra").inc(3)
        assert registry.counter_value("checker.findings",
                                      checker="casts") == 2
        assert registry.counter_value("checker.findings",
                                      checker="misra") == 3
        assert registry.counter_value("checker.findings") == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        first = registry.counter("n", a="1", b="2")
        second = registry.counter("n", b="2", a="1")
        assert first is second


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_empty_summary(self):
        histogram = MetricsRegistry().histogram("h")
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_exact_extremes(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (0.003, 0.5, 12.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["min"] == 0.003
        assert summary["max"] == 12.0
        assert summary["sum"] == pytest.approx(12.503)
        assert summary["count"] == 3
        assert histogram.quantile(0.0) == 0.003
        assert histogram.quantile(1.0) == 12.0

    def test_quantiles_uniform(self):
        histogram = MetricsRegistry().histogram("h")
        for index in range(1, 1001):
            histogram.observe(index / 1000.0)
        # Geometric buckets with factor 1.2 bound relative error ~10%.
        assert histogram.quantile(0.5) == pytest.approx(0.5, rel=0.12)
        assert histogram.quantile(0.95) == pytest.approx(0.95, rel=0.12)

    def test_quantiles_lognormal(self):
        rng = random.Random(26262)
        histogram = MetricsRegistry().histogram("h")
        samples = [math.exp(rng.gauss(0.0, 1.0)) for _ in range(5000)]
        for sample in samples:
            histogram.observe(sample)
        samples.sort()
        for quantile in (0.5, 0.9, 0.95):
            exact = samples[int(quantile * len(samples)) - 1]
            assert histogram.quantile(quantile) == \
                pytest.approx(exact, rel=0.15)

    def test_bounded_memory(self):
        histogram = MetricsRegistry().histogram("h")
        for index in range(10_000):
            histogram.observe(1.0 + (index % 100) / 100.0)
        # Values span [1, 2): at factor 1.2 that is at most a handful of
        # buckets — the whole point of a streaming histogram.
        assert len(histogram._buckets) <= 10
        assert histogram.count == 10_000

    def test_zero_and_negative_values(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.0)
        histogram.observe(-1.0)
        histogram.observe(2.0)
        assert histogram.quantile(0.0) == -1.0
        assert histogram.quantile(1.0) == 2.0

    def test_quantile_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_mean(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(2.0)


class TestRegistryExport:
    def test_to_dict_keys(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.units_parsed").inc(7)
        registry.counter("checker.findings", checker="casts").inc(2)
        registry.gauge("gpu.bytes_allocated").set(1024)
        registry.histogram("pipeline.parse_seconds").observe(0.25)
        document = registry.to_dict()
        assert document["counters"]["pipeline.units_parsed"] == 7
        assert document["counters"][
            'checker.findings{checker="casts"}'] == 2
        assert document["gauges"]["gpu.bytes_allocated"] == 1024
        assert document["histograms"][
            "pipeline.parse_seconds"]["count"] == 1

    def test_json_serializable(self):
        import json
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1.0)
        json.dumps(registry.to_dict())


class TestNullRegistry:
    def test_everything_is_a_no_op(self):
        registry = NullMetricsRegistry()
        registry.counter("a", label="x").inc(100)
        registry.gauge("b").set(5)
        registry.gauge("b").inc()
        registry.gauge("b").dec()
        registry.histogram("c").observe(1.0)
        assert registry.to_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}}

    def test_shared_instances(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.histogram("a") is registry.histogram("b")
