"""Run ledger: record schema stability, append/read round-trips, the
record builder, and the CLI ``--ledger`` integration."""

import json

import pytest

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.core.cli import main
from repro.obs import (
    LEDGER_SCHEMA,
    RunLedger,
    RunRecord,
    Tracer,
    build_run_record,
    new_run_id,
)
from repro.obs.runlog import FAULT_COUNTERS, STAGE_NAMES


def make_record(run_id="run-000000000", findings=None, stages=None,
                config_fp="cfg0", rules_fp=""):
    return RunRecord(
        run_id=run_id,
        timestamp="2026-08-08T12:00:00+00:00",
        config_fingerprint=config_fp,
        rules_fingerprint=rules_fp,
        corpus={"files": 4, "units": 4, "unparseable": 0,
                "loc": 200, "functions": 12},
        stages=stages or {"parse": 0.1, "checkers": 0.2},
        total_seconds=0.5,
        findings_by_rule=findings or {"SG.line_length": 3},
        total_findings=sum((findings or {"SG.line_length": 3}).values()),
    )


class TestRunRecord:
    def test_round_trip(self):
        record = make_record()
        rebuilt = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert rebuilt == record
        assert rebuilt.schema == LEDGER_SCHEMA

    def test_unknown_keys_dropped_missing_defaulted(self):
        # forward/backward schema stability: a newer writer's extra
        # field is ignored, an older writer's missing field defaults
        document = {"run_id": "abc", "timestamp": "t",
                    "future_field": {"x": 1}}
        record = RunRecord.from_dict(document)
        assert record.run_id == "abc"
        assert record.findings_by_rule == {}
        assert record.exit_code == 0
        assert not hasattr(record, "future_field")

    def test_new_run_id_shape(self):
        first, second = new_run_id(), new_run_id()
        assert len(first) == 12 and first != second
        int(first, 16)  # hex


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        for index in range(3):
            ledger.append(make_record(run_id=f"run-{index}"))
        records = ledger.records()
        assert [r.run_id for r in records] == ["run-0", "run-1", "run-2"]
        assert ledger.tail(2)[0].run_id == "run-1"

    def test_corrupt_line_skipped_and_counted(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record(run_id="keep-1"))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write("{torn json\n")
            handle.write("[1, 2]\n")  # parseable but not an object
        ledger.append(make_record(run_id="keep-2"))
        records = ledger.records()
        assert [r.run_id for r in records] == ["keep-1", "keep-2"]
        assert ledger.corrupt_lines == 2

    def test_missing_ledger_raises(self, tmp_path):
        with pytest.raises(OSError):
            RunLedger(str(tmp_path / "absent")).records()


class TestBuildRunRecord:
    def test_full_record_from_traced_cached_run(self, tmp_path,
                                                small_corpus):
        sources = small_corpus.sources()
        tracer = Tracer()
        cache = ResultCache(str(tmp_path))
        config = PipelineConfig(tracer=tracer, cache=cache, jobs=2)
        result = AssessmentPipeline(config).run(sources)
        record = build_run_record(
            result, run_id="abcdef012345", duration=1.25, exit_code=0,
            config=config, tracer=tracer, cache=cache,
            files=len(sources), timestamp="2026-08-08T00:00:00+00:00")
        assert record.corpus["files"] == len(sources)
        assert record.corpus["units"] == result.unit_count
        assert record.corpus["loc"] == result.total_loc
        assert set(record.stages) <= set(STAGE_NAMES)
        assert record.stages["parse"] > 0
        assert set(record.faults) == set(FAULT_COUNTERS)
        assert record.cache == {"hits": 0,
                                "misses": 2 * len(sources),
                                "puts": 2 * len(sources),
                                "corrupt_entries": 0}
        assert record.total_findings == sum(
            report.finding_count for report in result.reports.values())
        assert sum(record.findings_by_rule.values()) == \
            record.total_findings
        assert sum(record.findings_by_severity.values()) == \
            record.total_findings
        assert record.config_fingerprint and record.rules_fingerprint == ""
        assert record.jobs == 2 and record.executor == "thread"
        assert record.hotspots["files"] and record.hotspots["checkers"]
        assert len(record.hotspots["files"]) <= 5

    def test_untraced_record_is_still_valid(self, small_corpus):
        sources = small_corpus.sources()
        result = AssessmentPipeline(PipelineConfig()).run(sources)
        record = build_run_record(result, run_id="x", duration=0.1,
                                  exit_code=0)
        assert record.stages == {} and record.cache == {}
        assert record.total_findings > 0
        assert record.timestamp  # stamped from the wall clock


class TestCliLedger:
    def test_two_runs_append_two_records(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        for _ in range(2):
            assert main(["--corpus", "0.02",
                         "--ledger", str(ledger_dir)]) == 0
            out = capsys.readouterr().out
            assert "recorded to" in out
        records = RunLedger(str(ledger_dir)).records()
        assert len(records) == 2
        assert records[0].run_id != records[1].run_id
        # identical invocations share fingerprints (the trend window)
        assert records[0].config_fingerprint == \
            records[1].config_fingerprint
        assert records[0].stages and records[0].total_seconds > 0

    def test_default_output_unchanged_without_ledger(self, capsys):
        # the summary body must not grow a trailer when disabled
        assert main(["--corpus", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "recorded to" not in out
        assert "event log" not in out

    def test_unwritable_ledger_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file.txt"
        blocker.write_text("not a directory")
        assert main(["--corpus", "0.02",
                     "--ledger", str(blocker / "sub")]) == 2
        assert "cannot write run ledger" in capsys.readouterr().err
