"""Tests for the performance models and Figure 7/8 sweeps."""

import pytest

from repro.dnn.layers import ConvShape, GemmShape
from repro.errors import PerfModelError
from repro.perf import (
    AtlasModel,
    CONV_WORKLOADS,
    CuBlasModel,
    CuDnnModel,
    CutlassModel,
    GEMM_WORKLOADS,
    IsaacModel,
    OpenBlasModel,
    TITAN_XP,
    XEON_CPU,
    compare_conv,
    compare_gemm,
    occupancy_factor,
    predict_time,
    relative_to_baseline,
    render_case_study,
    render_conv_table,
    render_gemm_table,
    run_case_study,
    stable_jitter,
)

BIG_GEMM = GemmShape(m=2048, n=2048, k=2048)
SMALL_GEMM = GemmShape(m=32, n=32, k=32)
YOLO_CONV = ConvShape(batch=1, in_channels=64, out_channels=128,
                      in_h=52, in_w=52, ksize=3, stride=1, pad=1)


class TestRooflineModel:
    def test_compute_bound_time(self):
        time = predict_time(TITAN_XP, flops=10 ** 12, bytes_moved=10 ** 6,
                            compute_efficiency=0.5)
        expected = 10 ** 12 / (TITAN_XP.peak_flops * 0.5)
        assert time == pytest.approx(expected, rel=0.01)

    def test_memory_bound_time(self):
        time = predict_time(TITAN_XP, flops=10 ** 6, bytes_moved=10 ** 10,
                            compute_efficiency=0.9)
        expected = 10 ** 10 / (TITAN_XP.memory_bandwidth * 0.75)
        assert time == pytest.approx(expected, rel=0.01)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(PerfModelError):
            predict_time(TITAN_XP, 10, 10, compute_efficiency=0.0)
        with pytest.raises(PerfModelError):
            predict_time(TITAN_XP, 10, 10, compute_efficiency=1.5)

    def test_occupancy_monotone(self):
        assert occupancy_factor(100) < occupancy_factor(10_000) < \
            occupancy_factor(10_000_000)
        with pytest.raises(PerfModelError):
            occupancy_factor(0)

    def test_jitter_deterministic_and_bounded(self):
        a = stable_jitter("key", 0.9, 1.1)
        b = stable_jitter("key", 0.9, 1.1)
        assert a == b
        assert 0.9 <= a <= 1.1
        assert stable_jitter("other", 0.9, 1.1) != a


class TestGemmLibraries:
    def test_large_gemm_near_peak(self):
        gflops = CuBlasModel().gemm_gflops(BIG_GEMM)
        assert gflops > 0.6 * TITAN_XP.peak_flops / 1e9

    def test_small_gemm_far_from_peak(self):
        assert CuBlasModel().gemm_gflops(SMALL_GEMM) < \
            0.1 * TITAN_XP.peak_flops / 1e9

    def test_cutlass_tracks_cublas(self):
        cublas = CuBlasModel().gemm_time(BIG_GEMM)
        cutlass = CutlassModel().gemm_time(BIG_GEMM)
        assert 0.7 <= cublas / cutlass <= 1.3

    def test_cpu_blas_two_orders_slower(self):
        gpu = CuBlasModel().gemm_time(BIG_GEMM)
        cpu = OpenBlasModel().gemm_time(BIG_GEMM)
        assert cpu / gpu > 30.0

    def test_openblas_beats_atlas(self):
        assert OpenBlasModel().gemm_time(BIG_GEMM) < \
            AtlasModel().gemm_time(BIG_GEMM)

    def test_cudnn_rejects_gemm(self):
        with pytest.raises(PerfModelError):
            CuDnnModel().gemm_time(BIG_GEMM)

    def test_gemm_on_cpu_device_rejected_for_gpu_library(self):
        with pytest.raises(PerfModelError):
            CuBlasModel(XEON_CPU).gemm_time(BIG_GEMM)


class TestConvLibraries:
    def test_winograd_helps_cudnn(self):
        three = CuDnnModel().conv_time(YOLO_CONV)
        one = CuDnnModel().conv_time(ConvShape(
            batch=1, in_channels=64, out_channels=128, in_h=52, in_w=52,
            ksize=1, stride=1, pad=0))
        # 3x3 does 9x the flops of 1x1 but takes well under 9x the time.
        assert three / one < 7.0

    def test_heuristic_mismatch_penalty(self):
        aligned = ConvShape(batch=4, in_channels=128, out_channels=256,
                            in_h=28, in_w=28, ksize=3, stride=1, pad=1)
        odd = ConvShape(batch=4, in_channels=121, out_channels=243,
                        in_h=28, in_w=28, ksize=3, stride=1, pad=1)
        cudnn_drop = (CuDnnModel().conv_gflops(aligned)
                      / CuDnnModel().conv_gflops(odd))
        isaac_drop = (IsaacModel().conv_gflops(aligned)
                      / IsaacModel().conv_gflops(odd))
        # cuDNN suffers more from oddly shaped channels than ISAAC.
        assert cudnn_drop > isaac_drop

    def test_gemm_library_conv_lowering_slower_than_direct(self):
        via_gemm = CuBlasModel().conv_time(YOLO_CONV)
        direct = CuDnnModel().conv_time(YOLO_CONV)
        assert via_gemm > direct


class TestFigure8:
    def test_gemm_sweep_ratios_comparable(self):
        rows = compare_gemm()
        assert len(rows) == len(GEMM_WORKLOADS)
        for row in rows:
            assert 0.7 <= row.relative <= 1.3, row.label
        mean = sum(row.relative for row in rows) / len(rows)
        assert 0.85 <= mean <= 1.1

    def test_conv_sweep_ratios_comparable(self):
        rows = compare_conv()
        assert len(rows) == len(CONV_WORKLOADS)
        for row in rows:
            assert 0.6 <= row.relative <= 1.4, row.label
        mean = sum(row.relative for row in rows) / len(rows)
        assert 0.85 <= mean <= 1.15

    def test_isaac_wins_somewhere(self):
        # The input-aware story: ISAAC beats cuDNN on at least one shape.
        assert any(row.relative > 1.0 for row in compare_conv())

    def test_sweeps_deterministic(self):
        assert [row.relative for row in compare_gemm()] == \
            [row.relative for row in compare_gemm()]

    def test_render_tables(self):
        assert "cuBLAS" in render_gemm_table(compare_gemm())
        assert "ISAAC" in render_conv_table(compare_conv())


class TestFigure7:
    @pytest.fixture(scope="class")
    def results(self):
        return run_case_study()

    def test_all_six_implementations(self, results):
        names = {result.implementation for result in results}
        assert names == {"cuBLAS", "cuDNN", "CUTLASS", "ISAAC", "ATLAS",
                         "OpenBLAS"}

    def test_open_gpu_competitive(self, results):
        relatives = relative_to_baseline(results)
        assert 0.7 <= relatives["CUTLASS"] / relatives["cuBLAS"] <= 1.3
        assert 0.7 <= relatives["ISAAC"] / relatives["cuDNN"] <= 1.3

    def test_cpu_two_orders_of_magnitude(self, results):
        relatives = relative_to_baseline(results)
        assert relatives["ATLAS"] > 50.0
        assert relatives["OpenBLAS"] > 50.0
        assert relatives["ATLAS"] < 500.0

    def test_fps_positive(self, results):
        for result in results:
            assert result.fps > 0

    def test_render(self, results):
        rendered = render_case_study(results)
        assert "ms/frame" in rendered
        assert "OpenBLAS" in rendered
