"""Cross-device tests: the embedded (Drive PX2) deployment scenario."""

import pytest

from repro.dnn import YoloConfig, build_yolo_lite
from repro.perf import (
    CuDnnModel,
    DRIVE_PX2,
    IsaacModel,
    TITAN_XP,
    detection_time,
    run_case_study,
)


class TestEmbeddedDevice:
    def test_px2_slower_than_titan(self):
        network = build_yolo_lite(YoloConfig())
        titan = detection_time(CuDnnModel(TITAN_XP), network)
        px2 = detection_time(CuDnnModel(DRIVE_PX2), network)
        assert px2 > titan
        # Still real-time-capable territory on the embedded part.
        assert px2 < 0.1  # under 100 ms/frame

    def test_open_closed_parity_transfers_to_px2(self):
        """The Figure 7 conclusion is device-independent: the open
        libraries stay competitive on the in-vehicle GPU too."""
        network = build_yolo_lite(YoloConfig())
        cudnn = detection_time(CuDnnModel(DRIVE_PX2), network)
        isaac = detection_time(IsaacModel(DRIVE_PX2), network)
        assert 0.8 <= isaac / cudnn <= 1.25

    def test_case_study_accepts_device_override(self):
        results = run_case_study(device=DRIVE_PX2)
        gpu_rows = [result for result in results
                    if "Drive PX2" in result.device]
        assert len(gpu_rows) == 4  # the four GPU libraries

    def test_machine_balance_ordering(self):
        # The embedded part is more bandwidth-starved than the desktop
        # card, so its ridge point sits at higher arithmetic intensity.
        assert DRIVE_PX2.machine_balance > TITAN_XP.machine_balance
