"""Dead worker-shard sweep and the interrupted-run leak guarantee."""

import os

import pytest

from repro.core import PipelineConfig
from repro.core.pipeline import AssessmentPipeline
from repro.store import ObjectStore, Store
from repro.store.layout import (
    SHARD_PREFIX,
    list_shards,
    parse_worker_shard,
    safe_hostname,
)

#: A PID no live process plausibly holds (pid_max defaults to 4194304
#: on 64-bit Linux and kernels never hand out values above it).
DEAD_PID = 2 ** 22 + 17


def make_worker_shard(store_root, name, entries=1):
    """A leaked ``shard-…-w<i>`` directory with real object entries."""
    shard = os.path.join(store_root, name)
    area = ObjectStore(os.path.join(shard, "objects"))
    keys = []
    for index in range(entries):
        key = ObjectStore.key_for("t", f"{name}-{index}.cc", "src")
        area.put(key, {"from": name, "index": index})
        keys.append(key)
    return shard, keys


class TestParseWorkerShard:
    def test_worker_shard_names_parse(self):
        assert parse_worker_shard("shard-hostA-123-w0") == ("hostA", 123)
        assert parse_worker_shard("shard-ci.node-2-9-w17") == \
            ("ci.node-2", 9)

    @pytest.mark.parametrize("name", [
        "shard-host-123",          # plain per-process shard
        "shard-host-123-1of4",     # K/N corpus shard
        "shard-host-abc-w0",       # non-numeric pid
        "objects",
    ])
    def test_non_worker_names_do_not_parse(self, name):
        assert parse_worker_shard(name) is None


class TestSweep:
    def test_dead_worker_shard_is_absorbed_and_removed(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        host = safe_hostname()
        shard, keys = make_worker_shard(
            store.root, f"{SHARD_PREFIX}{host}-{DEAD_PID}-w0")
        area = store.object_store()  # sweep runs on open
        assert not os.path.exists(shard)
        assert area.get(keys[0]) == {"from": os.path.basename(shard),
                                     "index": 0}

    def test_alive_pid_and_kn_shards_are_untouched(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        host = safe_hostname()
        alive, _ = make_worker_shard(
            store.root, f"{SHARD_PREFIX}{host}-{os.getpid()}-w0")
        corpus, _ = make_worker_shard(
            store.root, f"{SHARD_PREFIX}{host}-{DEAD_PID}-1of2")
        foreign, _ = make_worker_shard(
            store.root, f"{SHARD_PREFIX}no-such-host-{DEAD_PID}-w0")
        store.object_store()
        assert os.path.exists(alive)
        assert os.path.exists(corpus)
        assert os.path.exists(foreign)

    def test_sweep_counts_and_logs(self, tmp_path):
        from repro.obs import BufferLog
        from repro.obs.metrics import MetricsRegistry
        store = Store(str(tmp_path / "store"))
        host = safe_hostname()
        for index in range(2):
            make_worker_shard(
                store.root,
                f"{SHARD_PREFIX}{host}-{DEAD_PID + index}-w{index}")
        area = ObjectStore(store.objects_root).attach(
            metrics=MetricsRegistry(), log=BufferLog())
        assert store.sweep_dead_worker_shards(area) == 2
        assert area.metrics.counter_value("cache.swept_shards") == 2
        assert any(event["event"] == "cache.sweep_shards"
                   for event in area.log.events)

    def test_sweep_is_idempotent(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        area = store.object_store()
        assert store.sweep_dead_worker_shards(area) == 0


class TestInterruptedRunLeaksNothing:
    def test_interrupt_mid_pool_leaves_no_worker_shards(
            self, tmp_path, monkeypatch):
        """KeyboardInterrupt inside the fan-out must still fold every
        armed worker shard back into the store (satellite: the absorb
        runs in a ``finally``)."""
        store = Store(str(tmp_path / "store"))
        cache = store.object_store()
        armed = []

        def interrupted_run_tasks(task_fn, tasks, **kwargs):
            for task in tasks:
                if task.shard_dir:
                    # simulate a worker that persisted one result
                    # before the pool was torn down
                    area = ObjectStore(task.shard_dir)
                    area.put(task.cache_keys[0], {"partial": True})
                    armed.append((task.shard_dir, task.cache_keys[0]))
            raise KeyboardInterrupt()

        monkeypatch.setattr("repro.core.pipeline.run_tasks",
                            interrupted_run_tasks)
        pipeline = AssessmentPipeline(PipelineConfig(
            jobs=2, executor="thread", cache=cache))
        sources = {"a.cpp": "int f() { return 1; }\n",
                   "b.cpp": "int g() { return 2; }\n"}
        with pytest.raises(KeyboardInterrupt):
            pipeline.run(sources)
        assert armed, "test arming failed: no worker shards created"
        # no shard-…-w* directory survives the interrupt
        leaked = [shard for shard in list_shards(store.root)
                  if parse_worker_shard(os.path.basename(shard))]
        assert leaked == []
        # ... and the partial result was absorbed, not discarded
        assert ObjectStore(store.objects_root).get(armed[0][1]) == \
            {"partial": True}
