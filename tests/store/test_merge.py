"""Merge properties: idempotent, order-independent, concurrency-safe.

The contract under test is the one the distributed workflow rests on:
however many shards and stores a fleet produces, and in whatever order
they are merged, the master store converges to the same bytes.
"""

import json
import multiprocessing
import os
import random

from repro.store import (
    LEDGER_FILENAME,
    ObjectStore,
    RunHistory,
    RunRecord,
    Store,
    import_ledger,
    merge_into,
    merge_shards,
)


def make_record(run_id, timestamp="2026-08-08T12:00:00+00:00", shard=""):
    return RunRecord(run_id=run_id, timestamp=timestamp, shard=shard,
                     total_findings=len(run_id))


def fill_shard(store, name, runs, objects):
    """One writer's worth of state: a shard with runs and objects."""
    history = RunHistory(store.shard_path(name))
    for run_id in runs:
        history.append(make_record(run_id, shard=name))
    area = ObjectStore(os.path.join(store.shard_path(name), "objects"))
    for key, value in objects:
        area.put(key, value)


def master_state(store):
    """The master's observable bytes: run table + object payloads."""
    with open(RunHistory(store.root).path, "rb") as handle:
        table = handle.read()
    area = ObjectStore(store.objects_root)
    payloads = {}
    for key, path in area.entries():
        with open(path, "rb") as handle:
            payloads[key] = handle.read()
    return table, payloads


def generated_shards(seed, shard_count=3, runs_per=4, objects_per=5):
    """Deterministic pseudo-random shard contents for property tests."""
    rng = random.Random(seed)
    shards = []
    for index in range(shard_count):
        runs = [f"run-{seed}-{index}-{i}" for i in range(runs_per)]
        objects = [
            (ObjectStore.key_for("t", f"f{index}-{i}.cc",
                                 str(rng.random())),
             {"payload": rng.randrange(1_000_000)})
            for i in range(objects_per)]
        shards.append((f"shard-w{index}", runs, objects))
    return shards


class TestMergeProperties:
    def test_merge_is_idempotent(self, tmp_path):
        # merge(merge(a, b), b) == merge(a, b)
        store = Store(str(tmp_path / "store"))
        shards = generated_shards(seed=1)
        for name, runs, objects in shards:
            fill_shard(store, name, runs, objects)
        first_stats = merge_shards(store)
        first = master_state(store)
        assert first_stats.runs_added == 12
        assert first_stats.objects_added == 15

        # replay the same content as a foreign source: nothing changes
        other = Store(str(tmp_path / "other"))
        for name, runs, objects in shards:
            fill_shard(other, name, runs, objects)
        merge_shards(other)
        again = merge_into(store, sources=[other.root])
        assert master_state(store) == first
        assert again.runs_added == 0 and again.runs_known == 12
        assert again.objects_added == 0
        assert again.objects_identical + again.objects_conflicts == 15
        assert again.objects_conflicts == 0

    def test_merge_is_order_independent(self, tmp_path):
        # the master's bytes do not depend on the order shards arrive
        shards = generated_shards(seed=2)
        states = []
        for ordering in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            store = Store(str(tmp_path / f"store-{''.join(map(str, ordering))}"))
            for position in ordering:
                name, runs, objects = shards[position]
                fill_shard(store, name, runs, objects)
                merge_shards(store)  # one merge per arrival
            states.append(master_state(store))
        assert states[0] == states[1] == states[2]

    def test_object_conflicts_resolve_order_independently(self, tmp_path):
        # two writers disagreeing on one key converge to the
        # lexicographically smaller payload either way round
        key = ObjectStore.key_for("t", "x.cc", "src")
        outcomes = []
        for ordering in (("aaa", "zzz"), ("zzz", "aaa")):
            store = Store(str(tmp_path / f"store-{ordering[0]}"))
            for index, payload in enumerate(ordering):
                fill_shard(store, f"shard-w{index}", [f"r{index}"],
                           [(key, payload)])
            stats = merge_shards(store)
            assert stats.objects_conflicts == 1
            area = ObjectStore(store.objects_root)
            outcomes.append(area.get(key))
        assert outcomes[0] == outcomes[1] == "aaa"

    def test_run_tables_union_by_run_id(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        # the same run id recorded in two shards lands once
        fill_shard(store, "shard-a", ["dup", "only-a"], [])
        fill_shard(store, "shard-b", ["dup", "only-b"], [])
        stats = merge_shards(store)
        assert stats.runs_added == 3 and stats.runs_known == 1
        run_ids = sorted(r.run_id for r in RunHistory(store.root).records())
        assert run_ids == ["dup", "only-a", "only-b"]
        # shard directories were folded in and removed
        assert store.shards() == []

    def test_keep_shards_preserves_sources(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        fill_shard(store, "shard-a", ["r1"],
                   [(ObjectStore.key_for("t", "a.cc", "s"), 1)])
        merge_shards(store, remove_shards=False)
        assert len(store.shards()) == 1
        # shard objects were copied, not moved
        shard_area = os.path.join(store.shards()[0], "objects")
        assert len(list(ObjectStore(shard_area).entries())) == 1


class TestLedgerImport:
    def test_legacy_ledger_runs_union_in(self, tmp_path):
        legacy = tmp_path / "legacy"
        ledger = RunHistory(str(legacy))
        ledger.append(make_record("old-run-1"))
        ledger.append(make_record("old-run-2"))
        store = Store(str(tmp_path / "store"))
        RunHistory(store.root).append(make_record("new-run"))
        stats = import_ledger(store, str(legacy))
        assert stats.runs_added == 2
        run_ids = sorted(r.run_id for r in RunHistory(store.root).records())
        assert run_ids == ["new-run", "old-run-1", "old-run-2"]
        # importing again is a no-op (idempotent)
        again = import_ledger(store, str(legacy))
        assert again.runs_added == 0 and again.runs_known == 2
        # the legacy directory was only read
        assert [r.run_id for r in RunHistory(str(legacy)).records()] == \
            ["old-run-1", "old-run-2"]


def _concurrent_writer(arguments):
    """Top-level so the multiprocessing pool can pickle it."""
    root, name, payload_seed = arguments
    store = Store(root)
    fill_shard(store, name, [f"run-{name}"],
               generated_shards(payload_seed, shard_count=1)[0][2])
    return name


class TestConcurrentWriters:
    def test_parallel_shard_writers_match_serial(self, tmp_path):
        # N processes writing shards concurrently, then one merge,
        # produces byte-identical master state to writing the same
        # shards serially in one process
        serial = Store(str(tmp_path / "serial"))
        concurrent = Store(str(tmp_path / "concurrent"))
        names = [f"shard-w{i}" for i in range(4)]
        for index, name in enumerate(names):
            _concurrent_writer((serial.root, name, 100 + index))
        merge_shards(serial)

        with multiprocessing.Pool(2) as pool:
            done = pool.map(_concurrent_writer,
                            [(concurrent.root, name, 100 + index)
                             for index, name in enumerate(names)])
        assert sorted(done) == names
        merge_shards(concurrent)
        assert master_state(concurrent) == master_state(serial)


class TestCanonicalTable:
    def test_rewrite_is_deterministic(self, tmp_path):
        documents = [make_record(f"r{i}").to_dict() for i in range(3)]
        first = RunHistory(str(tmp_path / "a"))
        second = RunHistory(str(tmp_path / "b"))
        first.rewrite(list(documents))
        second.rewrite(list(reversed(documents)))
        with open(first.path, "rb") as handle:
            left = handle.read()
        with open(second.path, "rb") as handle:
            right = handle.read()
        assert left == right
        # and the canonical table is still a readable history
        assert len(first.records()) == 3

    def test_master_and_shard_tables_unioned_on_read(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        RunHistory(store.root).append(make_record("master-run"))
        fill_shard(store, "shard-a", ["shard-run"], [])
        run_ids = {r.run_id for r in store.history().records()}
        assert run_ids == {"master-run", "shard-run"}

    def test_missing_master_with_shard_tables_still_reads(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        fill_shard(store, "shard-a", ["only-shard"], [])
        assert not os.path.exists(
            os.path.join(store.root, LEDGER_FILENAME))
        assert [r.run_id for r in store.history().records()] == \
            ["only-shard"]


def test_merge_stats_to_dict_round_trips(tmp_path):
    store = Store(str(tmp_path / "store"))
    fill_shard(store, "shard-a", ["r"], [])
    stats = merge_shards(store)
    document = json.loads(json.dumps(stats.to_dict()))
    assert document["runs_added"] == 1
    assert document["shards_merged"] == 1
