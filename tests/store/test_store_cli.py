"""``repro-store`` CLI: merge, gc, stats, runs — outputs and exit codes."""

import json
import os

from repro.store import ObjectStore, RunHistory, RunRecord, Store
from repro.store.cli import main


def make_shard(root, name, run_ids, object_count=2):
    store = Store(root)
    history = RunHistory(store.shard_path(name))
    for run_id in run_ids:
        history.append(RunRecord(
            run_id=run_id, timestamp="2026-08-08T12:00:00+00:00",
            shard=name, corpus={"units": 3}, total_findings=7))
    area = ObjectStore(os.path.join(store.shard_path(name), "objects"))
    for index in range(object_count):
        area.put(ObjectStore.key_for("t", f"{name}-{index}.cc", "s"),
                 index)


class TestMergeCommand:
    def test_merge_reports_and_folds_shards(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        make_shard(root, "shard-a", ["r1"])
        make_shard(root, "shard-b", ["r2"])
        assert main(["merge", root]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard(s)" in out
        assert "objects: 4 added" in out
        assert "runs: 2 added" in out
        assert Store(root).shards() == []

    def test_merge_json_and_from_ledger(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        legacy = str(tmp_path / "legacy")
        RunHistory(legacy).append(RunRecord(
            run_id="old", timestamp="2025-01-01T00:00:00+00:00"))
        report = str(tmp_path / "merge.json")
        assert main(["merge", root, "--from-ledger", legacy,
                     "--json", report]) == 0
        capsys.readouterr()
        with open(report, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["runs_added"] == 1
        assert document["sources"] == [legacy]
        assert [r.run_id for r in Store(root).history().records()] == \
            ["old"]

    def test_keep_shards(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        make_shard(root, "shard-a", ["r1"])
        assert main(["merge", root, "--keep-shards"]) == 0
        capsys.readouterr()
        assert len(Store(root).shards()) == 1


class TestGcCommand:
    def test_gc_requires_a_bound(self, tmp_path, capsys):
        assert main(["gc", str(tmp_path)]) == 2
        assert "--max-age" in capsys.readouterr().err

    def test_gc_rejects_negative_bounds(self, tmp_path, capsys):
        assert main(["gc", str(tmp_path), "--max-age", "-1"]) == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_gc_dry_run_reports(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        area = ObjectStore(Store(root).objects_root)
        area.put(ObjectStore.key_for("t", "a.cc", "s"), "payload")
        assert main(["gc", root, "--max-size", "0", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would sweep 1 entry" in out
        assert len(list(area.entries())) == 1


class TestStatsCommand:
    def test_stats_counts_areas(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        make_shard(root, "shard-a", ["r1"], object_count=3)
        area = ObjectStore(Store(root).objects_root)
        area.put(ObjectStore.key_for("t", "m.cc", "s"), 1)
        report = str(tmp_path / "stats.json")
        assert main(["stats", root, "--json", report]) == 0
        out = capsys.readouterr().out
        assert "objects: 1" in out
        assert "shards:  1 (3 objects, 1 runs" in out
        with open(report, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["shard_objects"] == 3
        assert document["shard_runs"] == 1


class TestRunsCommand:
    def test_runs_lists_master_and_shard_tables(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        RunHistory(root).append(RunRecord(
            run_id="master-run-0", timestamp="2026-08-08T12:00:00+00:00",
            corpus={"units": 9}, total_findings=11))
        make_shard(root, "shard-a", ["shard-run-00"])
        assert main(["runs", root]) == 0
        out = capsys.readouterr().out
        assert "master-run-0" in out and "shard-run-00" in out
        assert "shard-a" in out  # the shard column

    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["runs", str(tmp_path / "void")]) == 2
        assert "cannot read run history" in capsys.readouterr().err

    def test_empty_table_exits_2(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        os.makedirs(root)
        with open(os.path.join(root, "runs.jsonl"), "w"):
            pass
        assert main(["runs", root]) == 2
        assert "no readable run manifests" in capsys.readouterr().err

    def test_bad_last_exits_2(self, tmp_path, capsys):
        assert main(["runs", str(tmp_path), "--last", "0"]) == 2
        assert "--last" in capsys.readouterr().err


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err.lower()
