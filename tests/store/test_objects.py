"""Object-store mechanics: shard redirection, absorb, and the
corrupt-entry / plain-miss classification."""

import os
import pickle

from repro.store import CACHE_MISS, ObjectStore, Store


def key(tag):
    return ObjectStore.key_for(tag, "a/b.cc", "int main() {}\n")


class TestShardRedirection:
    def test_put_lands_in_shard_and_get_falls_through(self, tmp_path):
        master = str(tmp_path / "objects")
        shard = str(tmp_path / "shard-h-1" / "objects")
        area = ObjectStore(master, shard_root=shard)
        assert area.write_root == shard
        assert area.put(key("parse:3"), {"v": 1})
        # the entry physically lives in the shard, not the master
        assert os.path.exists(area.entry_path(key("parse:3"), shard))
        assert not os.path.exists(area.entry_path(key("parse:3"), master))
        # ... but the sharded writer still reads it back
        assert area.get(key("parse:3")) == {"v": 1}
        # a master-only reader does not see unmerged shard entries
        assert ObjectStore(master).get(key("parse:3")) is CACHE_MISS

    def test_master_entry_read_before_shard(self, tmp_path):
        master = str(tmp_path / "objects")
        shard = str(tmp_path / "shard-h-1" / "objects")
        ObjectStore(master).put(key("t"), "master")
        area = ObjectStore(master, shard_root=shard)
        assert area.get(key("t")) == "master"

    def test_store_object_store_wiring(self, tmp_path):
        store = Store(str(tmp_path / "store"))
        area = store.object_store()
        assert area.root == store.objects_root
        assert area.worker_shard_base == store.root
        assert area.record_references is True
        sharded = store.object_store(shard="")
        assert sharded.write_root.startswith(
            os.path.join(store.root, "shard-"))


class TestAbsorb:
    def test_absorb_moves_entries_and_counts_puts(self, tmp_path):
        area = ObjectStore(str(tmp_path / "objects"))
        worker = ObjectStore(str(tmp_path / "worker"))
        worker.put(key("a"), 1)
        worker.put(key("b"), 2)
        assert area.absorb(str(tmp_path / "worker")) == 2
        assert area.puts == 2
        assert area.get(key("a")) == 1 and area.get(key("b")) == 2
        assert key("a") in area.referenced
        # source entries were moved, not copied
        assert list(worker.entries()) == []

    def test_existing_destination_wins(self, tmp_path):
        area = ObjectStore(str(tmp_path / "objects"))
        area.put(key("a"), "present")
        worker = ObjectStore(str(tmp_path / "worker"))
        worker.put(key("a"), "incoming")
        assert area.absorb(str(tmp_path / "worker")) == 0
        assert area.get(key("a")) == "present"
        assert list(worker.entries()) == []

    def test_missing_area_is_a_noop(self, tmp_path):
        area = ObjectStore(str(tmp_path / "objects"))
        assert area.absorb(str(tmp_path / "nope")) == 0


class TestMissClassification:
    def test_plain_absence_is_not_corruption(self, tmp_path):
        area = ObjectStore(str(tmp_path))
        assert area.get(key("absent")) is CACHE_MISS
        assert area.misses == 1
        assert area.corrupt_entries == 0

    def test_unopenable_existing_entry_counts_corrupt(self, tmp_path):
        # an entry whose path exists but cannot be opened as a file
        # (here: it is a directory) is store rot, not a plain miss
        area = ObjectStore(str(tmp_path))
        os.makedirs(area.entry_path(key("dir")))
        assert area.get(key("dir")) is CACHE_MISS
        assert area.misses == 1
        assert area.corrupt_entries == 1

    def test_truncated_pickle_counts_corrupt(self, tmp_path):
        area = ObjectStore(str(tmp_path))
        area.put(key("torn"), {"big": list(range(100))})
        path = area.entry_path(key("torn"))
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert area.get(key("torn")) is CACHE_MISS
        assert area.corrupt_entries == 1
        # recompute-and-overwrite heals it
        assert area.put(key("torn"), "fresh")
        assert area.get(key("torn")) == "fresh"

    def test_wrong_schema_pickle_counts_corrupt(self, tmp_path):
        area = ObjectStore(str(tmp_path))
        path = area.entry_path(key("junk"))
        os.makedirs(os.path.dirname(path))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle at all")
        assert area.get(key("junk")) is CACHE_MISS
        assert area.corrupt_entries == 1


class TestEntries:
    def test_entries_sorted_and_round_trip(self, tmp_path):
        area = ObjectStore(str(tmp_path))
        keys = sorted(key(f"tag{i}") for i in range(5))
        for index, each in enumerate(keys):
            area.put(each, index)
        listed = list(area.entries())
        assert [k for k, _ in listed] == keys
        for each, path in listed:
            with open(path, "rb") as handle:
                pickle.load(handle)
