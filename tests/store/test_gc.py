"""Garbage collection: age and size bounds, manifest pinning, dry runs."""

import os

from repro.store import ObjectStore, RunHistory, RunRecord, Store, collect_garbage
from repro.store.gc import retained_keys

NOW = 1_700_000_000.0
DAY = 86400.0


def put_aged(area, key, value, age_days):
    area.put(key, value)
    path = area.entry_path(key)
    stamp = NOW - age_days * DAY
    os.utime(path, (stamp, stamp))
    return path


def make_store(tmp_path):
    store = Store(str(tmp_path / "store"))
    area = ObjectStore(store.objects_root)
    return store, area


class TestAgeBound:
    def test_old_entries_swept_fresh_kept(self, tmp_path):
        store, area = make_store(tmp_path)
        old = put_aged(area, ObjectStore.key_for("t", "old.cc", "s"),
                       "x" * 100, age_days=30)
        fresh = put_aged(area, ObjectStore.key_for("t", "new.cc", "s"),
                         "y" * 100, age_days=1)
        stats = collect_garbage(store, max_age_days=7, now=NOW)
        assert stats.examined == 2
        assert stats.swept == 1 and stats.kept_fresh == 1
        assert not os.path.exists(old) and os.path.exists(fresh)

    def test_no_bounds_is_a_noop(self, tmp_path):
        store, area = make_store(tmp_path)
        put_aged(area, ObjectStore.key_for("t", "a.cc", "s"), 1,
                 age_days=1000)
        stats = collect_garbage(store)
        assert stats.examined == 0 and stats.swept == 0
        assert len(list(area.entries())) == 1


class TestSizeBound:
    def test_lru_keeps_newest_within_budget(self, tmp_path):
        store, area = make_store(tmp_path)
        paths = {}
        # ~1KiB each, ages 0..9 days (newest first in LRU order)
        for index in range(10):
            key = ObjectStore.key_for("t", f"f{index}.cc", "s")
            paths[index] = put_aged(area, key, "z" * 1024,
                                    age_days=index)
        stats = collect_garbage(store, max_size_mb=0.004, now=NOW)
        assert stats.swept > 0
        assert stats.kept_fresh + stats.swept == 10
        # the newest entries survive, the oldest are gone
        survivors = {index for index, path in paths.items()
                     if os.path.exists(path)}
        assert survivors == set(range(stats.kept_fresh))

    def test_zero_budget_sweeps_everything_unpinned(self, tmp_path):
        store, area = make_store(tmp_path)
        for index in range(3):
            put_aged(area, ObjectStore.key_for("t", f"f{index}.cc", "s"),
                     "p" * 64, age_days=index)
        stats = collect_garbage(store, max_size_mb=0, now=NOW)
        assert stats.swept == 3
        assert list(area.entries()) == []


class TestManifestPinning:
    def test_referenced_entries_never_swept(self, tmp_path):
        store, area = make_store(tmp_path)
        pinned_key = ObjectStore.key_for("t", "pinned.cc", "s")
        loose_key = ObjectStore.key_for("t", "loose.cc", "s")
        pinned = put_aged(area, pinned_key, "a" * 64, age_days=365)
        loose = put_aged(area, loose_key, "b" * 64, age_days=365)
        RunHistory(store.root).append(RunRecord(
            run_id="r1", timestamp="2026-01-01T00:00:00+00:00",
            objects=[pinned_key]))
        assert retained_keys(store) == {pinned_key}
        stats = collect_garbage(store, max_age_days=7, now=NOW)
        assert stats.swept == 1 and stats.kept_referenced == 1
        assert os.path.exists(pinned) and not os.path.exists(loose)

    def test_shard_manifests_pin_too(self, tmp_path):
        store, area = make_store(tmp_path)
        key = ObjectStore.key_for("t", "shardpin.cc", "s")
        path = put_aged(area, key, "c" * 64, age_days=365)
        RunHistory(store.shard_path("shard-a")).append(RunRecord(
            run_id="r2", timestamp="2026-01-01T00:00:00+00:00",
            objects=[key]))
        stats = collect_garbage(store, max_age_days=7, now=NOW)
        assert stats.swept == 0 and stats.kept_referenced == 1
        assert os.path.exists(path)

    def test_missing_history_pins_nothing(self, tmp_path):
        store, _area = make_store(tmp_path)
        assert retained_keys(store) == set()


class TestDryRun:
    def test_dry_run_counts_without_removing(self, tmp_path):
        store, area = make_store(tmp_path)
        path = put_aged(area, ObjectStore.key_for("t", "a.cc", "s"),
                        "d" * 64, age_days=365)
        stats = collect_garbage(store, max_age_days=7, dry_run=True,
                                now=NOW)
        assert stats.swept == 1
        assert os.path.exists(path)
