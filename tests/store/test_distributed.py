"""The distributed contract, end to end through the real CLIs.

Pins the issue's acceptance bar: a corpus split across ``--shard``
invocations, folded with ``repro-store merge``, then replayed from the
merged store, produces findings, JSON, and exit code byte-identical to
one single-process run — and ``repro-trends`` works over the merged
history.
"""

from repro.core.cli import main as assess
from repro.obs.trends import main as trends
from repro.store import RunHistory, Store
from repro.store.cli import main as store_admin

SCALE = "0.02"


def run_quiet(capsys, argv):
    code = assess(argv)
    captured = capsys.readouterr()
    return code, captured.out


class TestShardMergeReplay:
    def test_two_shards_merge_to_byte_identical_run(self, tmp_path,
                                                    capsys):
        single = str(tmp_path / "single.json")
        merged = str(tmp_path / "merged.json")
        store = str(tmp_path / "store")

        code, single_out = run_quiet(capsys, [
            "--corpus", SCALE, "--json", single])
        assert code == 0

        for slice_spec in ("1/2", "2/2"):
            shard_code, shard_out = run_quiet(capsys, [
                "--corpus", SCALE, "--store", store,
                "--shard", slice_spec])
            assert shard_code == 0
            assert "recorded to" in shard_out
        # each shard run recorded its manifest in its own shard dir
        assert len(Store(store).shards()) == 2

        assert store_admin(["merge", store]) == 0
        capsys.readouterr()
        assert Store(store).shards() == []
        history = RunHistory(store)
        assert len(history.records()) == 2
        assert sorted(r.shard for r in history.records()) == \
            ["1/2", "2/2"]

        code, merged_out = run_quiet(capsys, [
            "--corpus", SCALE, "--store", store, "--json", merged])
        assert code == 0
        # the merged shards cover the corpus completely: the replay
        # recomputes nothing
        assert ", 0 misses" in merged_out

        with open(single, "rb") as handle:
            expected = handle.read()
        with open(merged, "rb") as handle:
            actual = handle.read()
        assert actual == expected

        # the summary body (minus the cache/JSON/ledger trailers that
        # differ by flags) is the same assessment
        assert single_out.split("\nJSON written")[0] == \
            merged_out.split("\ncache:")[0]

    def test_shard_slices_are_disjoint_and_complete(self, tmp_path,
                                                    capsys):
        store = str(tmp_path / "store")
        for slice_spec in ("1/3", "2/3", "3/3"):
            code, _out = run_quiet(capsys, [
                "--corpus", SCALE, "--store", store,
                "--shard", slice_spec])
            assert code == 0
        assert store_admin(["merge", store]) == 0
        capsys.readouterr()
        records = RunHistory(store).records()
        code, full_out = run_quiet(capsys, [
            "--corpus", SCALE, "--store", store])
        assert code == 0
        full = RunHistory(store).records()[-1]
        assert sum(r.corpus["files"] for r in records) == \
            full.corpus["files"]
        assert full.corpus["files"] > 0
        assert full_out  # the replay printed a summary


class TestWorkerShards:
    def test_jobs_fanout_matches_serial_and_cleans_up(self, tmp_path,
                                                      capsys):
        serial = str(tmp_path / "serial.json")
        fanned = str(tmp_path / "fanned.json")
        store = str(tmp_path / "store")
        code, _ = run_quiet(capsys, ["--corpus", SCALE, "--json", serial])
        assert code == 0
        code, _ = run_quiet(capsys, [
            "--corpus", SCALE, "--store", store, "--jobs", "2",
            "--json", fanned])
        assert code == 0
        with open(serial, "rb") as handle:
            expected = handle.read()
        with open(fanned, "rb") as handle:
            assert handle.read() == expected
        # worker shards were absorbed and removed on join
        assert Store(store).shards() == []
        # ... and their entries landed in the master area, replayable
        code, out = run_quiet(capsys, [
            "--corpus", SCALE, "--store", store])
        assert code == 0
        assert ", 0 misses" in out


class TestManifestObjects:
    def test_store_run_pins_objects_plain_cache_does_not(self, tmp_path,
                                                         capsys):
        store = str(tmp_path / "store")
        cache = str(tmp_path / "cache")
        ledger = str(tmp_path / "ledger")
        code, _ = run_quiet(capsys, ["--corpus", SCALE, "--store", store])
        assert code == 0
        record = RunHistory(store).records()[-1]
        assert record.objects  # every key the run read or wrote
        assert all(len(key) == 64 for key in record.objects)
        code, _ = run_quiet(capsys, [
            "--corpus", SCALE, "--cache", cache, "--ledger", ledger])
        assert code == 0
        assert RunHistory(ledger).records()[-1].objects == []


class TestMergeFrom:
    def test_merge_from_reuses_a_foreign_store(self, tmp_path, capsys):
        warm = str(tmp_path / "warm")
        fresh = str(tmp_path / "fresh")
        code, _ = run_quiet(capsys, ["--corpus", SCALE, "--store", warm])
        assert code == 0
        code, out = run_quiet(capsys, [
            "--corpus", SCALE, "--store", fresh, "--merge-from", warm])
        assert code == 0
        assert "merged 1 source(s)" in out
        assert ", 0 misses" in out  # every result came from the merge
        # the foreign store was only read
        assert len(RunHistory(warm).records()) == 1


class TestStoreFlagValidation:
    def test_shard_requires_store(self, capsys):
        assert assess(["--corpus", SCALE, "--shard", "1/2"]) == 2
        assert "--shard requires --store" in capsys.readouterr().err

    def test_merge_from_requires_store(self, tmp_path, capsys):
        assert assess(["--corpus", SCALE,
                       "--merge-from", str(tmp_path)]) == 2
        assert "--merge-from requires --store" in capsys.readouterr().err

    def test_store_and_cache_conflict(self, tmp_path, capsys):
        assert assess(["--corpus", SCALE,
                       "--store", str(tmp_path / "s"),
                       "--cache", str(tmp_path / "c")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_shard_spec_exits_2(self, tmp_path, capsys):
        for spec in ("3/2", "0/2", "x/2", "2", "2/0", "1/2/3"):
            assert assess(["--corpus", SCALE,
                           "--store", str(tmp_path / "s"),
                           "--shard", spec]) == 2, spec
            assert "bad pipeline configuration" in \
                capsys.readouterr().err


class TestTrendsOverStore:
    def test_trends_reads_merged_and_unmerged_history(self, tmp_path,
                                                      capsys):
        store = str(tmp_path / "store")
        for slice_spec in ("1/2", "2/2"):
            code, _ = run_quiet(capsys, [
                "--corpus", SCALE, "--store", store,
                "--shard", slice_spec])
            assert code == 0
        # unmerged: the shard tables are unioned in by run id
        assert trends(["--store", store]) == 0
        out = capsys.readouterr().out
        assert "last 2 run(s)" in out
        assert store_admin(["merge", store]) == 0
        capsys.readouterr()
        code, _ = run_quiet(capsys, ["--corpus", SCALE, "--store", store])
        assert code == 0
        assert trends(["--store", store]) == 0
        out = capsys.readouterr().out
        assert "last 3 run(s)" in out
        # shard runs never share the full run's trend window
        assert "last 1 run(s) share the latest configuration" in out
