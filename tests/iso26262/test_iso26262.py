"""Tests for the ISO 26262 model: ASILs, grades, tables, compliance."""

import pytest

from repro.errors import ComplianceError
from repro.iso26262 import (
    ALL_TABLES,
    ARCHITECTURAL_DESIGN_TABLE,
    Asil,
    ComplianceEngine,
    ComplianceThresholds,
    EvidenceItem,
    EvidenceSet,
    GapSeverity,
    Grade,
    MODELING_CODING_TABLE,
    UNIT_DESIGN_TABLE,
    Verdict,
    format_grade_row,
    get_table,
    parse_grade_row,
    render_table,
)


class TestAsil:
    def test_ordering(self):
        assert Asil.QM < Asil.A < Asil.B < Asil.C < Asil.D

    @pytest.mark.parametrize("text,expected", [
        ("ASIL-D", Asil.D), ("d", Asil.D), ("ASIL B", Asil.B),
        ("qm", Asil.QM), ("A", Asil.A),
    ])
    def test_parsing(self, text, expected):
        assert Asil.from_string(text) is expected

    def test_invalid_parse(self):
        with pytest.raises(ValueError):
            Asil.from_string("E")
        with pytest.raises(ValueError):
            Asil.from_string("")

    def test_safety_relevance(self):
        assert not Asil.QM.is_safety_relevant
        assert Asil.A.is_safety_relevant

    def test_describe(self):
        assert "highest" in Asil.D.describe()
        assert "quality management" in Asil.QM.describe()


class TestGrades:
    def test_symbol_roundtrip(self):
        for grade in Grade:
            assert Grade.from_symbol(grade.symbol) is grade

    def test_invalid_symbol(self):
        with pytest.raises(ValueError):
            Grade.from_symbol("+++")

    def test_parse_row(self):
        row = parse_grade_row("o + ++ ++")
        assert row[Asil.A] is Grade.NO_RECOMMENDATION
        assert row[Asil.B] is Grade.RECOMMENDED
        assert row[Asil.D] is Grade.HIGHLY_RECOMMENDED

    def test_parse_row_wrong_length(self):
        with pytest.raises(ValueError):
            parse_grade_row("++ ++")

    def test_format_row_roundtrip(self):
        assert format_grade_row(parse_grade_row("o + ++ ++")) == "o + ++ ++"

    def test_binding(self):
        assert not Grade.NO_RECOMMENDATION.is_binding
        assert Grade.RECOMMENDED.is_binding


class TestTables:
    def test_paper_table_shapes(self):
        assert len(MODELING_CODING_TABLE) == 8
        assert len(ARCHITECTURAL_DESIGN_TABLE) == 7
        assert len(UNIT_DESIGN_TABLE) == 10

    def test_exact_paper_grades_table1(self):
        defensive = MODELING_CODING_TABLE.technique(
            "defensive_implementation")
        assert format_grade_row(defensive.grades) == "o + ++ ++"
        style = MODELING_CODING_TABLE.technique("style_guides")
        assert format_grade_row(style.grades) == "+ ++ ++ ++"

    def test_exact_paper_grades_table3(self):
        pointers = UNIT_DESIGN_TABLE.technique("limited_pointers")
        assert format_grade_row(pointers.grades) == "o + + ++"
        globals_row = UNIT_DESIGN_TABLE.technique("avoid_globals")
        assert format_grade_row(globals_row.grades) == "+ + ++ ++"

    def test_interfaces_never_highly_recommended(self):
        row = ARCHITECTURAL_DESIGN_TABLE.technique(
            "restricted_interface_size")
        assert format_grade_row(row.grades) == "+ + + +"

    def test_all_binding_at_asil_d_except_noted(self):
        for table in ALL_TABLES.values():
            for technique in table:
                assert technique.grade_at(Asil.D).is_binding

    def test_qm_grades_as_no_recommendation(self):
        technique = MODELING_CODING_TABLE.technique("low_complexity")
        assert technique.grade_at(Asil.QM) is Grade.NO_RECOMMENDATION

    def test_highly_recommended_at(self):
        highly = MODELING_CODING_TABLE.highly_recommended_at(Asil.A)
        assert len(highly) == 4  # rows 1, 2, 3, 8

    def test_get_table(self):
        assert get_table("unit_design") is UNIT_DESIGN_TABLE
        with pytest.raises(KeyError):
            get_table("missing")

    def test_unknown_technique(self):
        with pytest.raises(KeyError):
            MODELING_CODING_TABLE.technique("missing")


def make_evidence(**overrides):
    """A full evidence set describing an Apollo-like codebase."""
    defaults = {
        "complexity": {"moderate_or_higher": 554, "functions": 10_000,
                       "max_complexity": 60},
        "language_subset": {"violations_per_kloc": 150.0,
                            "analyzed_lines": 220_000,
                            "gpu_functions": 50,
                            "gpu_functions_with_pointers": 50,
                            "gpu_functions_with_dynamic_memory": 10},
        "strong_typing": {"explicit_casts": 1450,
                          "implicit_narrowing_risks": 20},
        "defensive": {"validation_ratio": 0.02},
        "design_principles": {"mutable_globals": 1500},
        "globals": {"mutable_globals": 1500},
        "style": {"violations_per_kloc": 0.1},
        "naming": {"conformance_ratio": 0.999},
        "unit_design": {"multi_exit_ratio": 0.41,
                        "dynamic_alloc_ratio": 0.45,
                        "uninitialized_declarations": 40,
                        "shadowed_names": 12,
                        "pointer_ratio": 0.6,
                        "hidden_flow_sites": 30,
                        "goto_functions": 25,
                        "recursive_functions": 4},
        "architecture": {"hierarchy_depth": 3,
                         "oversized_components": 8,
                         "oversized_interfaces": 5,
                         "mean_cohesion": 0.8,
                         "low_cohesion_modules": 0,
                         "max_module_fanout": 6,
                         "scheduling_sites": 12,
                         "interrupt_sites": 0},
    }
    defaults.update(overrides)
    evidence = EvidenceSet()
    for key, stats in defaults.items():
        evidence.put(key, stats)
    return evidence


class TestEvidence:
    def test_duplicate_key_rejected(self):
        evidence = EvidenceSet()
        evidence.put("a", {})
        with pytest.raises(ComplianceError):
            evidence.put("a", {})

    def test_missing_key_raises(self):
        with pytest.raises(ComplianceError):
            EvidenceSet().get("missing")

    def test_missing_stat_raises(self):
        item = EvidenceItem(key="k", stats={"present": 1.0})
        with pytest.raises(ComplianceError):
            item.stat("absent")
        assert item.stat("absent", 7.0) == 7.0


class TestComplianceEngine:
    @pytest.fixture
    def tables(self):
        return ComplianceEngine().assess_all(make_evidence())

    def test_paper_verdicts_table1(self, tables):
        table = tables["modeling_coding"]
        assert table.assessment("low_complexity").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("language_subsets").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("strong_typing").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("defensive_implementation").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("graphical_representation").verdict \
            is Verdict.NOT_APPLICABLE
        assert table.assessment("style_guides").verdict \
            is Verdict.COMPLIANT
        assert table.assessment("naming_conventions").verdict \
            is Verdict.COMPLIANT

    def test_paper_verdicts_table3(self, tables):
        table = tables["unit_design"]
        assert table.assessment("single_entry_exit").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("no_dynamic_objects").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("avoid_globals").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("limited_pointers").verdict \
            is Verdict.NON_COMPLIANT
        assert table.assessment("no_recursion").verdict is Verdict.PARTIAL

    def test_component_size_gap(self, tables):
        table = tables["architectural_design"]
        entry = table.assessment("restricted_component_size")
        assert entry.verdict is Verdict.NON_COMPLIANT
        assert entry.gap is GapSeverity.CRITICAL

    def test_gap_severity_rules(self, tables):
        # Non-compliant ++ at ASIL D = critical.
        entry = tables["modeling_coding"].assessment("low_complexity")
        assert entry.gap is GapSeverity.CRITICAL
        # Compliant = no gap regardless of grade.
        entry = tables["modeling_coding"].assessment("naming_conventions")
        assert entry.gap is GapSeverity.NONE

    def test_clean_codebase_is_compliant(self):
        evidence = make_evidence(
            complexity={"moderate_or_higher": 0, "functions": 100,
                        "max_complexity": 8},
            language_subset={"violations_per_kloc": 0.0,
                             "gpu_functions": 0,
                             "gpu_functions_with_pointers": 0,
                             "gpu_functions_with_dynamic_memory": 0},
            strong_typing={"explicit_casts": 0,
                           "implicit_narrowing_risks": 0},
            defensive={"validation_ratio": 0.95},
            design_principles={"mutable_globals": 0},
            globals={"mutable_globals": 0},
            unit_design={"multi_exit_ratio": 0.0,
                         "dynamic_alloc_ratio": 0.0,
                         "uninitialized_declarations": 0,
                         "shadowed_names": 0,
                         "pointer_ratio": 0.0,
                         "hidden_flow_sites": 0,
                         "goto_functions": 0,
                         "recursive_functions": 0},
            architecture={"hierarchy_depth": 3,
                          "oversized_components": 0,
                          "oversized_interfaces": 0,
                          "mean_cohesion": 0.9,
                          "low_cohesion_modules": 0,
                          "max_module_fanout": 3,
                          "scheduling_sites": 0,
                          "interrupt_sites": 0},
        )
        tables = ComplianceEngine().assess_all(evidence)
        for table in tables.values():
            assert table.count(Verdict.NON_COMPLIANT) == 0

    def test_missing_evidence_yields_unknown(self):
        evidence = EvidenceSet()
        evidence.put("complexity", {"moderate_or_higher": 0,
                                    "functions": 1})
        table = ComplianceEngine().assess_table(MODELING_CODING_TABLE,
                                                evidence)
        assert table.assessment("style_guides").verdict is Verdict.UNKNOWN

    def test_custom_thresholds(self):
        lenient = ComplianceThresholds(max_explicit_casts=2000)
        tables = ComplianceEngine(thresholds=lenient).assess_all(
            make_evidence())
        assert tables["modeling_coding"].assessment(
            "strong_typing").verdict is Verdict.COMPLIANT

    def test_render_table_contains_grades_and_verdicts(self, tables):
        rendered = render_table(tables["modeling_coding"])
        assert "++" in rendered
        assert "NO" in rendered
        assert "n/a" in rendered

    def test_worst_gap(self, tables):
        assert tables["unit_design"].worst_gap is GapSeverity.CRITICAL


class TestObservations:
    def test_apollo_like_evidence_supports_all(self):
        from repro.iso26262 import generate_observations
        observations = generate_observations(make_evidence())
        numbers = {observation.number for observation in observations}
        assert numbers == {1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 14}
        assert all(observation.supported for observation in observations)

    def test_clean_codebase_refutes_gap_observations(self):
        from repro.iso26262 import generate_observations
        evidence = make_evidence(
            complexity={"moderate_or_higher": 0, "functions": 100,
                        "max_complexity": 5},
            strong_typing={"explicit_casts": 3,
                           "implicit_narrowing_risks": 0},
        )
        by_number = {observation.number: observation
                     for observation in generate_observations(evidence)}
        assert not by_number[1].supported
        assert not by_number[5].supported

    def test_tooling_observations(self):
        from repro.iso26262 import tooling_observations
        observations = tooling_observations(coverage_average=83.0,
                                            open_vs_closed_relative=0.95)
        by_number = {observation.number: observation
                     for observation in observations}
        assert by_number[10].supported
        assert by_number[11].supported
        assert by_number[12].supported

    def test_full_coverage_refutes_observation_10(self):
        from repro.iso26262 import tooling_observations
        observations = tooling_observations(coverage_average=100.0)
        assert not observations[0].supported


class TestAsilSensitivity:
    def test_gap_monotone_in_asil(self):
        from repro.iso26262 import asil_sensitivity
        profiles = asil_sensitivity(make_evidence())
        weights = [profile.weighted for profile in profiles]
        # Higher target ASIL can only add binding recommendations, so the
        # weighted gap is non-decreasing from A to D.
        assert weights == sorted(weights)
        assert profiles[0].asil is Asil.A
        assert profiles[-1].asil is Asil.D

    def test_defensive_gap_vanishes_at_asil_a(self):
        from repro.iso26262 import ComplianceEngine, GapSeverity
        engine_a = ComplianceEngine(target_asil=Asil.A)
        engine_d = ComplianceEngine(target_asil=Asil.D)
        evidence = make_evidence()
        at_a = engine_a.assess_table(MODELING_CODING_TABLE, evidence)
        at_d = engine_d.assess_table(MODELING_CODING_TABLE, evidence)
        assert at_a.assessment("defensive_implementation").gap \
            is GapSeverity.NONE
        assert at_d.assessment("defensive_implementation").gap \
            is GapSeverity.CRITICAL

    def test_pointer_gap_grows_with_asil(self):
        from repro.iso26262 import ComplianceEngine, GapSeverity, \
            UNIT_DESIGN_TABLE
        evidence = make_evidence()
        gap_a = ComplianceEngine(target_asil=Asil.A).assess_table(
            UNIT_DESIGN_TABLE, evidence).assessment(
            "limited_pointers").gap
        gap_d = ComplianceEngine(target_asil=Asil.D).assess_table(
            UNIT_DESIGN_TABLE, evidence).assessment(
            "limited_pointers").gap
        assert gap_a is GapSeverity.NONE   # 'o' at ASIL A
        assert gap_d is GapSeverity.CRITICAL

    def test_render(self):
        from repro.iso26262 import asil_sensitivity, render_sensitivity
        rendered = render_sensitivity(asil_sensitivity(make_evidence()))
        assert "ASIL-A" in rendered
        assert "ASIL-D" in rendered
        assert "weighted" in rendered
