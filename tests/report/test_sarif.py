"""SARIF 2.1.0 export: structure, rule index integrity, suppressions."""

import json

from repro.report import SarifReporter, sarif_document
from repro.report.sarif import LEVELS, SARIF_VERSION
from repro.rules import REGISTRY


class TestDocumentStructure:
    def test_top_level_fields(self, report_model):
        document = sarif_document(report_model)
        assert document["version"] == SARIF_VERSION
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(document["runs"]) == 1

    def test_driver_identity(self, report_model):
        driver = sarif_document(report_model)["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-assess"
        assert driver["version"] == report_model.tool_version

    def test_render_is_valid_json(self, report_model):
        rendered = SarifReporter().render(report_model)
        assert json.loads(rendered)["version"] == SARIF_VERSION


class TestRulesArray:
    def test_one_entry_per_finding_producing_rule(self, report_model):
        run = sarif_document(report_model)["runs"][0]
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        produced = {activity.rule.id for activity in report_model.rules
                    if activity.findings or activity.suppressed}
        assert sorted(ids) == sorted(produced)
        assert len(ids) == len(set(ids))

    def test_entries_carry_iso_topic_and_level(self, report_model):
        run = sarif_document(report_model)["runs"][0]
        for entry in run["tool"]["driver"]["rules"]:
            rule = REGISTRY.get(entry["id"])
            assert entry["defaultConfiguration"]["level"] \
                == LEVELS[rule.severity]
            assert entry["properties"]["checker"] == rule.checker
            if rule.table:
                assert entry["properties"]["iso26262Table"] == rule.table
                assert entry["properties"]["iso26262Topic"] == rule.topic

    def test_rule_index_integrity(self, report_model):
        run = sarif_document(report_model)["runs"][0]
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert run["results"], "the corpus assessment produces findings"
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]


class TestResults:
    def test_result_count_covers_active_and_suppressed(self,
                                                       report_model):
        run = sarif_document(report_model)["runs"][0]
        expected = sum(
            len(report.findings) + len(report.suppressed)
            for report in report_model.result.reports.values())
        assert len(run["results"]) == expected

    def test_locations_and_levels(self, report_model):
        run = sarif_document(report_model)["runs"][0]
        for result in run["results"]:
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            if "region" in location:
                assert location["region"]["startLine"] >= 1
            assert result["level"] in ("error", "warning", "note")

    def test_deviation_findings_become_suppressions(self,
                                                    deviation_model):
        run = sarif_document(deviation_model)["runs"][0]
        suppressed = [result for result in run["results"]
                      if "suppressions" in result]
        assert [result["ruleId"] for result in suppressed] \
            == ["GV.mutable_global"]
        entry = suppressed[0]["suppressions"][0]
        assert entry["kind"] == "inSource"
        assert entry["status"] == "accepted"

    def test_active_findings_carry_no_suppressions(self, report_model):
        run = sarif_document(report_model)["runs"][0]
        # the default corpus run has no deviations at all
        assert not any("suppressions" in result
                       for result in run["results"])


class TestDegradedRuns:
    def test_clean_run_has_no_invocations(self, report_model):
        assert "invocations" not in sarif_document(report_model)["runs"][0]

    def test_crashes_become_notifications(self, small_corpus):
        from repro.core import AssessmentPipeline, PipelineConfig
        from repro.report import build_report_model
        from repro.testing import Fault, FaultPlan, FaultyChecker
        sources = small_corpus.sources()
        plan = FaultPlan([Fault(kind="raise")])
        result = AssessmentPipeline(PipelineConfig(
            extra_checkers=(FaultyChecker(plan),))).run(sources)
        assert result.degraded
        run = sarif_document(
            build_report_model(result, sources))["runs"][0]
        notes = run["invocations"][0]["toolExecutionNotifications"]
        assert len(notes) == len(result.crashes)
        assert all(note["level"] == "error" for note in notes)
