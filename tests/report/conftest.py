"""Shared report fixtures: one model per expensive ingredient."""

import pytest

from repro.core import assess_sources
from repro.report import build_report_model, collect_yolo_coverage

#: A tree whose assessment carries both active and deviation-suppressed
#: findings — the suppression-mapping cases need both kinds.
DEVIATION_TREE = {
    "perception/dev.cc": (
        "int g_counter = 0;"
        "  // DEVIATION(GV.mutable_global: legacy telemetry counter)\n"
        "int plain_global = 1;\n"
        "int Compute(int value) {\n"
        "  if (value < 0) { return 0; }\n"
        "  return value;\n"
        "}\n"
    ),
}


@pytest.fixture(scope="session")
def report_model(small_corpus, small_assessment):
    """The full corpus model — no coverage, no ledger, no tracer."""
    return build_report_model(small_assessment, small_corpus.sources())


@pytest.fixture(scope="session")
def deviation_model():
    result = assess_sources(DEVIATION_TREE)
    return build_report_model(result, DEVIATION_TREE)


@pytest.fixture(scope="session")
def yolo_coverage():
    return collect_yolo_coverage()


@pytest.fixture(scope="session")
def coverage_model(small_corpus, small_assessment, yolo_coverage):
    return build_report_model(small_assessment, small_corpus.sources(),
                              coverage=yolo_coverage)
