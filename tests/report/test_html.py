"""The HTML dashboard: structure, self-containment, annotation."""

import os
import re

import pytest

from repro.report import write_dashboard
from repro.report.html import _slug, render_index, render_module_page

#: Anything that would make a page reach off-disk.
EXTERNAL = re.compile(
    r"https?://|<script|<link|src=|@import|url\(", re.IGNORECASE)


@pytest.fixture(scope="module")
def dashboard(tmp_path_factory, coverage_model):
    directory = tmp_path_factory.mktemp("dash")
    pages = write_dashboard(coverage_model, str(directory))
    return directory, pages


class TestSiteStructure:
    def test_index_and_drilldowns_written(self, dashboard,
                                          coverage_model):
        directory, pages = dashboard
        assert (directory / "index.html").exists()
        for rollup in coverage_model.modules:
            assert (directory / "modules"
                    / f"{_slug(rollup.name)}.html").exists()
        for record in coverage_model.coverage.campaign.files:
            assert (directory / "coverage"
                    / f"{_slug(record.filename)}.html").exists()
        assert len(pages) == (1 + len(coverage_model.modules)
                              + len(coverage_model.coverage
                                    .campaign.files))

    def test_every_page_is_self_contained(self, dashboard):
        directory, pages = dashboard
        for path in pages:
            text = open(path, encoding="utf-8").read()
            assert not EXTERNAL.search(text), path
            assert "<style>" in text

    def test_index_links_resolve(self, dashboard):
        directory, _ = dashboard
        index = (directory / "index.html").read_text()
        for target in re.findall(r'href="([^"]+)"', index):
            assert os.path.exists(directory / target), target


class TestOverviewContent:
    def test_paper_figures_present(self, coverage_model):
        index = render_index(coverage_model)
        assert "Findings per ISO 26262-6 table / topic" in index
        assert "Severity mix" in index
        assert "Violation density per module" in index
        assert "Coverage by type (Figure 5)" in index
        assert "Requirement-table verdicts" in index
        assert "Rule index" in index

    def test_charts_are_inline_svg_with_tooltips(self, coverage_model):
        index = render_index(coverage_model)
        assert index.count("<svg") >= 3
        assert "<title>" in index

    def test_clean_run_has_no_degradations_panel(self, coverage_model):
        assert "Degradations" not in render_index(coverage_model)

    def test_without_coverage_an_empty_state_renders(self, report_model):
        index = render_index(report_model)
        assert "no coverage data collected" in index


class TestModulePages:
    def test_findings_annotated_on_their_lines(self, deviation_model):
        rollup = next(r for r in deviation_model.modules
                      if r.name == "perception")
        page = render_module_page(deviation_model, rollup)
        assert 'class="ln finding"' in page
        assert 'class="ln deviation"' in page
        assert "GV.mutable_global" in page
        assert "suppressed by deviation" in page

    def test_source_lines_escaped(self, dashboard, coverage_model):
        directory, _ = dashboard
        rollup = max(coverage_model.modules, key=lambda r: r.findings)
        page = (directory / "modules"
                / f"{_slug(rollup.name)}.html").read_text()
        path = rollup.files[0]
        raw_markers = [line for line
                       in coverage_model.sources[path].split("\n")
                       if "<" in line or "&" in line]
        if raw_markers:
            assert raw_markers[0] not in page


class TestCoveragePages:
    def test_miss_marks_and_branch_gaps(self, dashboard):
        directory, _ = dashboard
        page = (directory / "coverage" / "gemm.c.html").read_text()
        assert "####" in page
        assert "branch not fully" in page
        assert 'class="ln hit"' in page and 'class="ln miss"' in page

    def test_percent_tiles_match_campaign(self, dashboard,
                                          coverage_model):
        directory, _ = dashboard
        record = next(r for r in coverage_model.coverage.campaign.files
                      if r.filename == "gemm.c")
        page = (directory / "coverage" / "gemm.c.html").read_text()
        assert f"{record.statement_percent:.1f}%" in page
        assert f"{record.branch_percent:.1f}%" in page
