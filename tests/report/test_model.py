"""The shared report model: aggregation agrees with the result."""

from repro.obs import RunLedger
from repro.report import build_report_model
from repro.rules import REGISTRY

from ..obs.test_runlog import make_record


class TestRuleAndTopicActivity:
    def test_rule_findings_sum_to_total(self, report_model):
        assert sum(activity.findings
                   for activity in report_model.rules) \
            == report_model.total_findings

    def test_every_registered_rule_present(self, report_model):
        assert [activity.rule.id for activity in report_model.rules] \
            == [rule.id for rule in REGISTRY]

    def test_topics_cover_all_findings(self, report_model):
        assert sum(topic.findings for topic in report_model.topics) \
            == report_model.total_findings

    def test_topics_busiest_first_and_non_empty(self, report_model):
        counts = [topic.findings for topic in report_model.topics]
        assert counts == sorted(counts, reverse=True)
        assert all(topic.findings or topic.suppressed
                   for topic in report_model.topics)

    def test_suppressed_rolled_up(self, deviation_model):
        activity = {a.rule.id: a for a in deviation_model.rules}
        assert activity["GV.mutable_global"].suppressed == 1


class TestSeverityAndModules:
    def test_severity_mix_sums_to_total(self, report_model):
        assert sum(report_model.severity_mix.values()) \
            == report_model.total_findings

    def test_module_rollups_join_metrics(self, report_model):
        by_name = {m.name: m for m in report_model.result.modules}
        for rollup in report_model.modules:
            assert rollup.loc == by_name[rollup.name].loc
            assert rollup.functions \
                == by_name[rollup.name].function_count
        assert sum(rollup.findings for rollup in report_model.modules) \
            == report_model.total_findings

    def test_density_is_findings_per_kloc(self, report_model):
        rollup = max(report_model.modules, key=lambda m: m.findings)
        assert rollup.density \
            == 1000.0 * rollup.findings / rollup.loc

    def test_module_files_partition_sources(self, report_model):
        gathered = [path for rollup in report_model.modules
                    for path in rollup.files]
        assert sorted(gathered) == sorted(report_model.sources)


class TestFindingLookup:
    def test_findings_for_line_ordered(self, report_model):
        path = next(iter(sorted(report_model.sources)))
        located = report_model.findings_for(path)
        assert all(finding.filename == path for finding in located)
        lines = [finding.line for finding in located]
        assert lines == sorted(lines)

    def test_suppressed_for(self, deviation_model):
        suppressed = deviation_model.suppressed_for("perception/dev.cc")
        assert [finding.rule for finding in suppressed] \
            == ["GV.mutable_global"]


class TestTrends:
    def test_no_ledger_means_no_trends(self, report_model):
        assert report_model.trends is None

    def test_window_and_series(self, tmp_path, deviation_model):
        ledger = RunLedger(str(tmp_path))
        for index in range(2):
            ledger.append(make_record(run_id=f"old-{index}",
                                      config_fp="cfgA",
                                      findings={"GV.mutable_global": 4}))
        for index in range(3):
            ledger.append(make_record(run_id=f"new-{index}",
                                      config_fp="cfgB",
                                      findings={"GV.mutable_global":
                                                index + 1}))
        model = build_report_model(
            deviation_model.result, deviation_model.sources,
            ledger=ledger)
        trends = model.trends
        assert trends.window_size == 5
        assert trends.matched_runs == 3
        assert trends.run_ids == ("new-0", "new-1", "new-2")
        assert trends.series["GV.mutable_global"] == [1, 2, 3]
        assert trends.config_fingerprint == "cfgB"

    def test_unreadable_ledger_yields_none(self, tmp_path,
                                           deviation_model):
        model = build_report_model(
            deviation_model.result, deviation_model.sources,
            ledger=RunLedger(str(tmp_path / "absent")))
        assert model.trends is None


class TestCoverage:
    def test_collectors_and_sources_align(self, yolo_coverage):
        filenames = [record.filename
                     for record in yolo_coverage.campaign.files]
        assert sorted(yolo_coverage.collectors) == sorted(filenames)
        assert sorted(yolo_coverage.sources) == sorted(filenames)

    def test_campaign_matches_experiment(self, yolo_coverage):
        from repro.dnn.minic_yolo import run_yolo_coverage
        direct = run_yolo_coverage()
        assert [record.as_row() for record in direct.files] \
            == [record.as_row()
                for record in yolo_coverage.campaign.files]
