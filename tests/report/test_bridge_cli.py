"""The CLI reporter bridge: pinned legacy bytes, new flags, exit codes."""

import json

import pytest

from repro.core.cli import main
from repro.core.markdown import render_markdown

CORPUS_ARGS = ["--corpus", "0.04"]


def run_cli(capsys, *extra):
    code = main(CORPUS_ARGS + list(extra))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLegacySurfacesPinned:
    """--json/--markdown now route through the bridge; the bytes and
    announcement lines are pinned to the pre-bridge writers."""

    def test_json_byte_identical_to_direct_dump(self, tmp_path, capsys,
                                                small_assessment):
        target = tmp_path / "out.json"
        code, out, _ = run_cli(capsys, "--json", str(target))
        assert code == 0
        assert target.read_text() \
            == json.dumps(small_assessment.to_dict(), indent=2)
        assert f"\nJSON written to {target}\n" in out

    def test_markdown_byte_identical_to_direct_render(self, tmp_path,
                                                      capsys,
                                                      small_assessment):
        target = tmp_path / "out.md"
        code, out, _ = run_cli(capsys, "--markdown", str(target))
        assert code == 0
        assert target.read_text() == render_markdown(small_assessment)
        # pinned asymmetry: Markdown's line has no leading blank line
        assert f"Markdown written to {target}\n" in out

    def test_announcement_order_json_before_markdown(self, tmp_path,
                                                     capsys):
        code, out, _ = run_cli(
            capsys, "--json", str(tmp_path / "a.json"),
            "--markdown", str(tmp_path / "a.md"),
            "--sarif", str(tmp_path / "a.sarif"))
        assert code == 0
        assert out.index("JSON written") < out.index("Markdown written")
        assert out.index("Markdown written") < out.index("SARIF written")


class TestNewSurfaces:
    def test_sarif_flag_writes_valid_log(self, tmp_path, capsys):
        target = tmp_path / "out.sarif"
        code, out, _ = run_cli(capsys, "--sarif", str(target))
        assert code == 0
        assert f"SARIF written to {target}" in out
        document = json.loads(target.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_html_flag_writes_dashboard(self, tmp_path, capsys):
        target = tmp_path / "dash"
        code, out, _ = run_cli(capsys, "--html", str(target))
        assert code == 0
        assert f"HTML dashboard written to {target}" in out
        assert (target / "index.html").exists()
        assert (target / "modules").is_dir()


class TestExitTwoValidation:
    def test_unwritable_json_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code, _, err = run_cli(capsys, "--json",
                               str(blocker / "out.json"))
        assert code == 2
        assert "cannot write JSON report" in err

    def test_unwritable_sarif_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code, _, err = run_cli(capsys, "--sarif",
                               str(blocker / "out.sarif"))
        assert code == 2
        assert "cannot write SARIF report" in err

    def test_unwritable_cobertura_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code, _, err = run_cli(capsys, "--cobertura",
                               str(blocker / "cov.xml"))
        assert code == 2
        assert "cannot write Cobertura XML" in err

    def test_unwritable_html_dir_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code, _, err = run_cli(capsys, "--html", str(blocker))
        assert code == 2
        assert "cannot write HTML dashboard" in err


class TestConfigWiring:
    def test_targets_reach_pipeline_config(self):
        from repro.core import PipelineConfig
        from repro.report import ReportTargets
        config = PipelineConfig(report=ReportTargets(sarif="x.sarif"))
        assert config.report.any()
        assert not config.report.needs_coverage()
        assert PipelineConfig().report == ReportTargets()
        assert not PipelineConfig().report.any()

    def test_needs_coverage_only_for_html_and_cobertura(self):
        from repro.report import ReportTargets
        assert ReportTargets(html="d").needs_coverage()
        assert ReportTargets(cobertura="f").needs_coverage()
        assert not ReportTargets(json="f", markdown="m",
                                 sarif="s").needs_coverage()
