"""Cobertura export: round-trips through xml.etree with true hit counts."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.errors import ReportError
from repro.report import CoberturaReporter, cobertura_xml
from repro.report.cobertura import _branch_lines, _line_hits


@pytest.fixture(scope="module")
def parsed(yolo_coverage):
    return ElementTree.fromstring(cobertura_xml(yolo_coverage))


class TestDocumentShape:
    def test_root_and_declaration(self, yolo_coverage):
        text = cobertura_xml(yolo_coverage)
        assert text.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        assert ElementTree.fromstring(text).tag == "coverage"

    def test_one_class_per_covered_file(self, parsed, yolo_coverage):
        classes = parsed.findall(".//class")
        assert sorted(element.get("filename") for element in classes) \
            == sorted(yolo_coverage.collectors)

    def test_aggregate_counts_consistent(self, parsed):
        lines_valid = int(parsed.get("lines-valid"))
        lines_covered = int(parsed.get("lines-covered"))
        assert 0 < lines_covered <= lines_valid
        rate = float(parsed.get("line-rate"))
        assert rate == pytest.approx(lines_covered / lines_valid,
                                     abs=1e-4)

    def test_branch_totals_consistent(self, parsed):
        covered = int(parsed.get("branches-covered"))
        valid = int(parsed.get("branches-valid"))
        assert 0 < covered <= valid
        assert float(parsed.get("branch-rate")) \
            == pytest.approx(covered / valid, abs=1e-4)


class TestLineRoundTrip:
    def test_hits_match_collector(self, parsed, yolo_coverage):
        for element in parsed.findall(".//class"):
            collector = yolo_coverage.collectors[element.get("filename")]
            expected = _line_hits(collector)
            got = {int(line.get("number")): int(line.get("hits"))
                   for line in element.find("lines")}
            assert got == expected

    def test_condition_coverage_matches_outcomes(self, parsed,
                                                 yolo_coverage):
        checked = 0
        for element in parsed.findall(".//class"):
            collector = yolo_coverage.collectors[element.get("filename")]
            branches = _branch_lines(collector)
            for line in element.find("lines"):
                if line.get("branch") != "true":
                    continue
                covered, total = branches[int(line.get("number"))]
                assert line.get("condition-coverage") \
                    == (f"{int(round(100.0 * covered / total))}% "
                        f"({covered}/{total})")
                checked += 1
        assert checked > 0

    def test_methods_carry_entry_lines(self, parsed, yolo_coverage):
        element = next(e for e in parsed.findall(".//class")
                       if e.get("filename") == "gemm.c")
        names = {method.get("name")
                 for method in element.find("methods")}
        collector = yolo_coverage.collectors["gemm.c"]
        assert names == {function.name
                         for function in collector.program.functions}


class TestReporter:
    def test_without_coverage_raises_report_error(self, report_model):
        with pytest.raises(ReportError,
                           match="no coverage data collected"):
            CoberturaReporter().render(report_model)

    def test_write_and_announce(self, tmp_path, coverage_model):
        destination = tmp_path / "cov.xml"
        line = CoberturaReporter().write(coverage_model,
                                         str(destination))
        assert line == f"Cobertura XML written to {destination}"
        assert ElementTree.parse(str(destination)).getroot() \
                          .tag == "coverage"
