"""The fused single-sweep engine's contract: byte-identical output.

One token walk per unit dispatches to every registered checker;
everything a checker emits — findings, order, stats, suppressions —
must match running its ``check_unit`` alone.  These tests pin that
equivalence on the synthetic Apollo corpus, plus the engine's crash
containment, the legacy fallback for visitor-less checkers, and the
function-line index backing ``enclosing_function_name``.
"""

from typing import Optional

import pytest

from repro.checkers.base import (
    Checker,
    CheckerReport,
    Finding,
    Severity,
    enclosing_function_name,
    run_checkers,
)
from repro.core import AssessmentPipeline, PipelineConfig
from repro.core.parallel import check_unit_bundle, split_checkers
from repro.corpus import apollo_spec, generate_corpus
from repro.engine.driver import fused_unit_bundle
from repro.engine.index import FunctionLineIndex, function_line_index
from repro.lang.cppmodel import TranslationUnit, parse_translation_unit


@pytest.fixture(scope="module")
def corpus_sources():
    return generate_corpus(apollo_spec(scale=0.02)).sources()


@pytest.fixture(scope="module")
def units(corpus_sources):
    return [parse_translation_unit(source, path)
            for path, source in sorted(corpus_sources.items())]


def builtin_checkers(sources):
    return AssessmentPipeline(PipelineConfig())._checkers(sources)


class TestByteIdentical:
    def test_bundles_match_legacy_per_checker_path(self, corpus_sources,
                                                   units):
        per_unit, _ = split_checkers(builtin_checkers(corpus_sources))
        reference = builtin_checkers(corpus_sources)
        legacy_per_unit, _ = split_checkers(reference)
        for unit in units:
            fused = fused_unit_bundle(per_unit, unit)
            legacy = check_unit_bundle(legacy_per_unit, unit)
            assert set(fused) == set(legacy), unit.filename
            for name in legacy:
                assert fused[name] == legacy[name], \
                    f"{unit.filename}: {name}"

    def test_pipeline_matches_legacy_run_checkers(self, corpus_sources,
                                                  units):
        result = AssessmentPipeline(PipelineConfig()).run(corpus_sources)
        reference = run_checkers(builtin_checkers(corpus_sources), units)
        assert set(result.reports) == set(reference)
        for name, report in reference.items():
            assert result.reports[name] == report, name

    def test_every_builtin_per_unit_checker_registers(self,
                                                      corpus_sources):
        per_unit, project = split_checkers(
            builtin_checkers(corpus_sources))
        for checker in per_unit:
            assert type(checker).unit_visitor \
                is not Checker.unit_visitor, checker.name
        assert [checker.name for checker in project] == ["architecture"]


class _VisitorLess(Checker):
    """An external-style checker that never learned about sweeps."""

    name = "visitor_less"

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        report = self.new_report((unit,))
        report.stats["functions_seen"] = len(unit.functions)
        return report


class _SweepCrasher(Checker):
    """Registers a token handler that explodes on the Nth event."""

    name = "sweep_crasher"

    def __init__(self, fuse: int = 3) -> None:
        self.fuse = fuse
        self._seen = 0

    def check_unit(self, unit: TranslationUnit) -> CheckerReport:
        raise AssertionError("engine should use the visitor")

    def unit_visitor(self, unit, report, sweep) -> bool:
        def on_punct(index, token):
            self._seen += 1
            if self._seen >= self.fuse:
                raise RuntimeError("boom in the shared sweep")
            report.emit(Finding(
                rule="internal.checker_crash", message="pre-crash noise",
                filename=unit.filename, line=token.line,
                severity=Severity.INFO))
        sweep.on_text(";", on_punct)
        return True


class TestFallbackAndContainment:
    def test_visitorless_checker_takes_legacy_path(self, units):
        unit = units[0]
        bundle = fused_unit_bundle([_VisitorLess()], unit)
        assert bundle["visitor_less"] == _VisitorLess().check_unit(unit)

    def test_crash_is_contained_and_attributed(self, corpus_sources,
                                               units):
        per_unit, _ = split_checkers(builtin_checkers(corpus_sources))
        unit = units[0]
        clean = fused_unit_bundle(per_unit, unit)
        bundle = fused_unit_bundle(per_unit + [_SweepCrasher()], unit)
        crashed = bundle["sweep_crasher"]
        assert crashed.crashes
        assert crashed.crashes[0].stage == "check_unit"
        assert crashed.crashes[0].path == unit.filename
        # No partial emissions survive from the crashed checker, and the
        # re-swept survivors are untouched by its earlier handlers.
        assert [f.rule for f in crashed.findings] == \
            ["internal.checker_crash"]
        for name, report in clean.items():
            assert bundle[name] == report, name

    def test_strict_reraises_sweep_crash(self, corpus_sources, units):
        per_unit, _ = split_checkers(builtin_checkers(corpus_sources))
        with pytest.raises(RuntimeError):
            fused_unit_bundle(per_unit + [_SweepCrasher()], units[0],
                              strict=True)


def _legacy_enclosing(unit: TranslationUnit, line: int) -> str:
    """The pre-index implementation, verbatim, as the oracle."""
    best: Optional[str] = None
    best_span = 0
    for function in unit.functions:
        if function.start_line <= line <= function.end_line:
            span = function.end_line - function.start_line
            if best is None or span < best_span:
                best = function.qualified_name
                best_span = span
    return best or ""


class TestFunctionLineIndex:
    def test_matches_legacy_scan_on_corpus(self, units):
        for unit in units[:12]:
            top = max((function.end_line for function in unit.functions),
                      default=0)
            for line in range(0, top + 3):
                assert enclosing_function_name(unit, line) == \
                    _legacy_enclosing(unit, line), \
                    f"{unit.filename}:{line}"

    def test_memoized_per_unit(self, units):
        unit = units[0]
        assert function_line_index(unit) is function_line_index(unit)

    def test_empty_unit(self):
        unit = parse_translation_unit("int g_x = 1;", "empty.cc")
        index = FunctionLineIndex(unit.functions)
        assert index.lookup(1) == ""
        assert index.lookup(-5) == ""
        assert index.lookup(10_000) == ""
