"""Tests for rule profiles, deviation scanning, and emission routing."""

from repro.checkers import (
    GlobalVariableChecker,
    MisraChecker,
    Severity,
)
from repro.rules import (
    MISSING_RATIONALE,
    REGISTRY,
    Rule,
    RuleProfile,
    UNKNOWN_RULE,
    scan_deviations,
)
from repro.lang import parse_translation_unit


class TestRuleProfile:
    def test_default_enables_everything(self):
        profile = RuleProfile()
        assert profile.enabled("GV.mutable_global")
        assert profile.enabled("anything.at.all")

    def test_disable_wins_over_enable(self):
        profile = RuleProfile(enable=("GV.*",), disable=("GV.mutable*",))
        assert not profile.enabled("GV.mutable_global")

    def test_enable_narrows(self):
        profile = RuleProfile(enable=("M15.*",))
        assert profile.enabled("M15.1")
        assert not profile.enabled("GV.mutable_global")

    def test_empty_enable_normalizes_to_all(self):
        assert RuleProfile(enable=()).enabled("X.y")

    def test_severity_override_last_match_wins(self):
        profile = RuleProfile(severities=(
            ("GV.*", Severity.INFO),
            ("GV.mutable_global", Severity.CRITICAL),
        ))
        assert profile.severity_for("GV.mutable_global",
                                    Severity.MAJOR) is Severity.CRITICAL
        assert profile.severity_for("GV.other",
                                    Severity.MAJOR) is Severity.INFO
        assert profile.severity_for("NC.type_name",
                                    Severity.MINOR) is Severity.MINOR

    def test_severities_accepts_mapping(self):
        profile = RuleProfile(severities={"GV.*": Severity.INFO})
        assert profile.severity_for("GV.x",
                                    Severity.MAJOR) is Severity.INFO

    def test_fingerprint_empty_at_defaults(self):
        rules = [Rule("A.1", "t", Severity.MINOR),
                 Rule("A.2", "t", Severity.MAJOR)]
        assert RuleProfile().fingerprint_for(rules) == ""

    def test_fingerprint_records_disables_and_overrides(self):
        rules = [Rule("A.1", "t", Severity.MINOR),
                 Rule("A.2", "t", Severity.MAJOR)]
        profile = RuleProfile(disable=("A.1",),
                              severities=(("A.2", Severity.INFO),))
        assert profile.fingerprint_for(rules) == "-A.1,A.2=INFO"


GUARDED_SOURCE = """\
int g_counter = 0;  // DEVIATION(GV.mutable_global: legacy HAL interop)
int bare_global = 1;  // DEVIATION(GV.mutable_global)
int orphan = 2;  // DEVIATION(ZZ.not_registered: whatever)
int plain_global = 3;
"""


def _unit(source=GUARDED_SOURCE, filename="dev.cc"):
    return parse_translation_unit(source, filename)


class TestScanDeviations:
    def test_scan_finds_sites_with_rationale(self):
        index = scan_deviations(_unit().tokens, "dev.cc")
        assert len(index) == 3
        justified = index.suppressing("GV.mutable_global", "dev.cc", 1)
        assert justified is not None
        assert justified.rationale == "legacy HAL interop"

    def test_unjustified_deviation_does_not_suppress(self):
        index = scan_deviations(_unit().tokens, "dev.cc")
        assert index.suppressing("GV.mutable_global", "dev.cc", 2) is None

    def test_wrong_rule_or_line_does_not_suppress(self):
        index = scan_deviations(_unit().tokens, "dev.cc")
        assert index.suppressing("NC.global_name", "dev.cc", 1) is None
        assert index.suppressing("GV.mutable_global", "dev.cc", 4) is None

    def test_multiline_comment_line_offsets(self):
        source = ("/* block\n"
                  "   DEVIATION(GV.mutable_global: spans lines)\n"
                  "*/\n"
                  "int x;\n")
        index = scan_deviations(_unit(source).tokens, "dev.cc")
        (deviation,) = list(index)
        assert deviation.line == 2


class TestEmissionRouting:
    def test_deviation_suppresses_exactly_its_line(self):
        report = GlobalVariableChecker().check_unit(_unit())
        flagged = {finding.line for finding in report.findings
                   if finding.rule == "GV.mutable_global"}
        assert flagged == {2, 3, 4}
        assert [finding.line for finding in report.suppressed] == [1]
        assert report.stats["deviations"] == 1
        # Suppressed findings leave the evidence stats too.
        assert report.stats["mutable_globals"] == 3

    def test_missing_rationale_is_a_finding(self):
        report = GlobalVariableChecker().check_unit(_unit())
        missing = [finding for finding in report.findings
                   if finding.rule == MISSING_RATIONALE]
        assert [finding.line for finding in missing] == [2]
        assert "states no rationale" in missing[0].message

    def test_unknown_rule_flagged_by_auditor_only(self):
        unit = _unit()
        misra_report = MisraChecker().check_unit(unit)
        unknown = [finding for finding in misra_report.findings
                   if finding.rule == UNKNOWN_RULE]
        assert [finding.line for finding in unknown] == [3]
        globals_report = GlobalVariableChecker().check_unit(unit)
        assert not any(finding.rule == UNKNOWN_RULE
                       for finding in globals_report.findings)

    def test_disabled_rule_vanishes_from_stats(self):
        checker = GlobalVariableChecker()
        checker.profile = RuleProfile(disable=("GV.*",))
        report = checker.check_unit(_unit())
        assert not any(finding.rule == "GV.mutable_global"
                       for finding in report.findings)
        assert report.stats["mutable_globals"] == 0
        assert report.suppressed == []

    def test_severity_override_rewrites_findings(self):
        checker = GlobalVariableChecker()
        checker.profile = RuleProfile(
            severities=(("GV.mutable_global", Severity.INFO),))
        report = checker.check_unit(_unit("int plain_global = 3;\n"))
        (finding,) = report.findings
        assert finding.severity is Severity.INFO

    def test_no_profile_no_deviations_keeps_bare_report(self):
        report = GlobalVariableChecker().check_unit(
            _unit("int plain_global = 3;\n"))
        assert report.rules is None
        assert "deviations" not in report.stats


class TestFingerprintWithProfile:
    def test_unaffected_checker_fingerprint_unchanged(self):
        checker = GlobalVariableChecker()
        default = checker.fingerprint()
        checker.profile = RuleProfile(disable=("NC.*",))
        assert checker.fingerprint() == default

    def test_affected_checker_fingerprint_changes(self):
        checker = GlobalVariableChecker()
        default = checker.fingerprint()
        checker.profile = RuleProfile(disable=("GV.*",))
        assert checker.fingerprint() != default
        assert "@rules:" in checker.fingerprint()

    def test_deviation_process_rules_fold_in(self):
        checker = GlobalVariableChecker()
        default = checker.fingerprint()
        checker.profile = RuleProfile(disable=(MISSING_RATIONALE,))
        assert checker.fingerprint() != default

    def test_registry_owns_emitted_rules(self):
        # Every rule id the routed checkers emit must be registered, or
        # profiles could never address it.
        for rule_id in ("GV.mutable_global", MISSING_RATIONALE,
                        UNKNOWN_RULE):
            assert rule_id in REGISTRY
