"""Tests for finding baselines (snapshot, compare, persistence)."""

import json

import pytest

from repro.checkers import CheckerReport, Finding
from repro.errors import BaselineError
from repro.rules import BASELINE_VERSION, Baseline, finding_key


def _report(checker, *findings):
    report = CheckerReport(checker=checker)
    report.findings = list(findings)
    return report


def _finding(rule="R.1", message="msg", filename="a.cc", line=1,
             function=""):
    return Finding(rule=rule, message=message, filename=filename,
                   line=line, function=function)


class TestFindingKey:
    def test_key_ignores_line(self):
        assert finding_key(_finding(line=1)) == finding_key(_finding(line=99))

    def test_key_distinguishes_rule_file_function_message(self):
        base = finding_key(_finding())
        assert finding_key(_finding(rule="R.2")) != base
        assert finding_key(_finding(filename="b.cc")) != base
        assert finding_key(_finding(function="f")) != base
        assert finding_key(_finding(message="other")) != base


class TestCompare:
    def test_identical_run_reports_nothing_new(self):
        reports = {"x": _report("x", _finding(), _finding(rule="R.2"))}
        comparison = Baseline.from_reports(reports).compare(reports)
        assert comparison.total_new == 0
        assert comparison.known == 2
        assert comparison.new == {}

    def test_new_finding_detected(self):
        baseline = Baseline.from_reports({"x": _report("x", _finding())})
        comparison = baseline.compare(
            {"x": _report("x", _finding(), _finding(rule="R.9"))})
        assert comparison.known == 1
        assert [f.rule for f in comparison.new["x"]] == ["R.9"]
        assert comparison.new_by_rule() == {"R.9": 1}

    def test_moved_finding_stays_known(self):
        baseline = Baseline.from_reports(
            {"x": _report("x", _finding(line=10))})
        comparison = baseline.compare(
            {"x": _report("x", _finding(line=42))})
        assert comparison.total_new == 0

    def test_occurrences_are_counted_not_set_matched(self):
        baseline = Baseline.from_reports(
            {"x": _report("x", _finding(), _finding())})
        comparison = baseline.compare(
            {"x": _report("x", _finding(), _finding(), _finding())})
        assert comparison.known == 2
        assert comparison.total_new == 1

    def test_unknown_checker_is_all_new(self):
        comparison = Baseline().compare({"x": _report("x", _finding())})
        assert comparison.total_new == 1
        assert comparison.known == 0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        reports = {"x": _report("x", _finding(), _finding(rule="R.2"))}
        path = str(tmp_path / "base.json")
        Baseline.from_reports(reports).save(path)
        loaded = Baseline.load(path)
        assert loaded.compare(reports).total_new == 0

    def test_snapshot_is_stable_json(self, tmp_path):
        reports = {"x": _report("x", _finding())}
        path = str(tmp_path / "base.json")
        Baseline.from_reports(reports).save(path)
        document = json.loads((tmp_path / "base.json").read_text())
        assert document["version"] == BASELINE_VERSION
        assert list(document["findings"]) == ["x"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            Baseline.load(str(tmp_path / "absent.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(str(path))

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 999, "findings": {}}))
        with pytest.raises(BaselineError, match="finding snapshot"):
            Baseline.load(str(path))

    def test_malformed_findings_raise(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION,
             "findings": {"x": ["not", "a", "mapping"]}}))
        with pytest.raises(BaselineError, match="malformed"):
            Baseline.load(str(path))

    def test_unwritable_path_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot write"):
            Baseline().save(str(tmp_path / "no" / "such" / "dir" / "b.json"))
