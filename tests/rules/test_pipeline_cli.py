"""Pipeline and CLI integration for profiles, deviations, and baselines."""

import json

import pytest

from repro.core import PipelineConfig, assess_corpus, assess_sources
from repro.core.cli import main
from repro.core.markdown import render_markdown
from repro.rules import Baseline, RuleProfile

TREE = {
    "perception/dev.cc": (
        "int g_counter = 0;"
        "  // DEVIATION(GV.mutable_global: legacy telemetry counter)\n"
        "int plain_global = 1;\n"
        "int Compute(int value) {\n"
        "  if (value < 0) { return 0; }\n"
        "  return value;\n"
        "}\n"
    ),
}


class TestDefaultRunUnchanged:
    """The tentpole's compatibility pin: no profile => identical output."""

    def test_all_default_profile_is_byte_identical(self, small_corpus,
                                                   small_assessment):
        profiled = assess_corpus(
            small_corpus, PipelineConfig(rules=RuleProfile()))
        assert json.dumps(profiled.to_dict(), sort_keys=True) \
            == json.dumps(small_assessment.to_dict(), sort_keys=True)
        assert profiled.render_summary() \
            == small_assessment.render_summary()

    def test_default_run_has_no_rules_artifacts(self, small_assessment):
        document = small_assessment.to_dict()
        assert "suppressed_findings" not in document
        assert "baseline" not in document
        assert small_assessment.profile is None
        assert small_assessment.baseline is None
        for report in small_assessment.reports.values():
            assert report.suppressed == []
            assert "deviations" not in report.stats
        assert "## Rule index" not in render_markdown(small_assessment)


class TestProfiledPipeline:
    def test_disabled_rule_vanishes_everywhere(self):
        default = assess_sources(TREE)
        assert any(finding.rule == "GV.mutable_global"
                   for finding in default.reports["globals"].findings)
        assert default.evidence.get("globals").stats["mutable_globals"] \
            >= 1

        disabled = assess_sources(
            TREE, PipelineConfig(rules=RuleProfile(disable=("GV.*",))))
        assert not any(finding.rule == "GV.mutable_global"
                       for finding in disabled.reports["globals"].findings)
        assert disabled.evidence.get("globals").stats["mutable_globals"] \
            == 0
        assert "GV.mutable_global" \
            not in disabled.evidence.get("globals").rule_counts
        markdown = render_markdown(disabled)
        assert "## Rule index" in markdown
        assert "| GV.mutable_global | globals | off |" in markdown

    def test_deviation_counted_and_suppressed(self):
        result = assess_sources(TREE)
        report = result.reports["globals"]
        assert report.stats["deviations"] == 1
        assert [finding.rule for finding in report.suppressed] \
            == ["GV.mutable_global"]
        assert result.total_suppressed == 1
        assert result.to_dict()["suppressed_findings"] == {"globals": 1}
        assert "deviation-suppressed       : 1" in result.render_summary()

    def test_evidence_carries_rule_counts(self, small_assessment):
        counts = small_assessment.evidence.get("globals").rule_counts
        assert counts.get("GV.mutable_global", 0) \
            == small_assessment.reports["globals"].finding_count

    def test_baseline_comparison_through_config(self):
        first = assess_sources(TREE)
        baseline = Baseline.from_reports(first.reports)
        grown = dict(TREE)
        grown["perception/dev.cc"] += "int second_global = 2;\n"
        second = assess_sources(grown,
                                PipelineConfig(baseline=baseline))
        assert second.baseline is not None
        assert second.baseline.total_new >= 1
        new_rules = second.baseline.new_by_rule()
        assert new_rules.get("GV.mutable_global") == 1
        document = second.to_dict()
        assert document["baseline"]["new"] == second.baseline.total_new
        assert "baseline:" in second.render_summary()


def _write_tree(root):
    for path, source in TREE.items():
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


class TestCliRules:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "GV.mutable_global" in out
        assert "rules registered" in out

    def test_list_rules_wins_over_corpus(self, capsys):
        assert main(["--corpus", "0.05", "--list-rules"]) == 0
        assert "rules registered" in capsys.readouterr().out

    def test_disable_drops_findings_from_json(self, tmp_path, capsys):
        _write_tree(tmp_path)
        out = tmp_path / "report.json"
        assert main([str(tmp_path), "--disable", "GV.*",
                     "--json", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["checker_findings"]["globals"] == 0

    def test_unknown_rule_pattern_rejected(self, capsys):
        assert main(["--corpus", "0.02", "--disable", "NOPE.*"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err

    def test_baseline_round_trip(self, tmp_path, capsys):
        _write_tree(tmp_path)
        snapshot = tmp_path / "base.json"
        assert main([str(tmp_path / "perception"),
                     "--write-baseline", str(snapshot)]) == 0
        assert snapshot.exists()
        capsys.readouterr()
        assert main([str(tmp_path / "perception"),
                     "--baseline", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert ", 0 new" in out

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path), "--baseline",
                     str(tmp_path / "absent.json")]) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestCliTopValidation:
    """Satellite fix: --top was silently ignored without --profile."""

    def test_top_without_profile_exits_2(self, capsys):
        assert main(["--corpus", "0.02", "--top", "5"]) == 2
        err = capsys.readouterr().err
        assert err.strip() == "--top has no effect without --profile"

    def test_top_zero_exits_2(self, capsys):
        assert main(["--corpus", "0.02", "--profile", "--top", "0"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_top_negative_exits_2(self, capsys):
        assert main(["--corpus", "0.02", "--profile", "--top", "-3"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_top_with_profile_accepted(self, capsys):
        assert main(["--corpus", "0.02", "--profile", "--top", "3"]) == 0
        assert "pipeline" in capsys.readouterr().out

    def test_profile_without_top_defaults(self, capsys):
        assert main(["--corpus", "0.02", "--profile"]) == 0
        assert "pipeline" in capsys.readouterr().out
