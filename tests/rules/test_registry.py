"""Tests for the rule registry and its renderer."""

import pytest

import repro.checkers  # noqa: F401  (populates the registry)
from repro.errors import RuleError
from repro.rules import (
    DEVIATION_RULES,
    MISSING_RATIONALE,
    REGISTRY,
    Rule,
    RuleRegistry,
    Severity,
    UNKNOWN_RULE,
    render_rules,
)


class TestRuleRegistry:
    def test_register_returns_rule(self):
        registry = RuleRegistry()
        rule = Rule("X.one", "title", Severity.MINOR)
        assert registry.register(rule) is rule
        assert "X.one" in registry

    def test_register_idempotent_for_equal_records(self):
        registry = RuleRegistry()
        registry.register(Rule("X.one", "title"))
        registry.register(Rule("X.one", "title"))
        assert len(registry) == 1

    def test_conflicting_registration_rejected(self):
        registry = RuleRegistry()
        registry.register(Rule("X.one", "title"))
        with pytest.raises(RuleError, match="conflicting registration"):
            registry.register(Rule("X.one", "a different title"))

    def test_register_many_injects_checker(self):
        registry = RuleRegistry()
        rules = registry.register_many("mychecker", (
            Rule("X.b", "b"), Rule("X.a", "a")))
        assert all(rule.checker == "mychecker" for rule in rules)
        assert [rule.id for rule in registry.rules_for("mychecker")] \
            == ["X.a", "X.b"]

    def test_checker_of_unknown_is_empty(self):
        registry = RuleRegistry()
        assert registry.checker_of("NO.such") == ""

    def test_iteration_is_deterministic(self):
        registry = RuleRegistry()
        registry.register_many("b", (Rule("B.1", "t"),))
        registry.register_many("a", (Rule("A.2", "t"), Rule("A.1", "t")))
        assert [rule.id for rule in registry] == ["A.1", "A.2", "B.1"]


class TestGlobalRegistry:
    def test_every_checker_registered_rules(self):
        checkers = {rule.checker for rule in REGISTRY}
        assert {"language_subset", "casts", "defensive", "globals",
                "naming", "style", "unit_design", "architecture",
                "gpu_subset", "deviation"} <= checkers

    def test_known_rule_ids_present(self):
        for rule_id in ("M15.1", "ST.c_cast", "GV.mutable_global",
                        "UD10.recursion", "AR2.component_size", "GS3",
                        MISSING_RATIONALE, UNKNOWN_RULE):
            assert rule_id in REGISTRY

    def test_deviation_process_rules(self):
        assert [rule.id for rule in DEVIATION_RULES] \
            == [MISSING_RATIONALE, UNKNOWN_RULE]
        assert REGISTRY.checker_of(MISSING_RATIONALE) == "deviation"

    def test_rules_carry_iso_mapping(self):
        rule = REGISTRY.get("GV.mutable_global")
        assert rule.table == "unit_design"
        assert rule.topic == "avoid_globals"


class TestRenderRules:
    def test_lists_every_rule_with_footer(self):
        text = render_rules()
        for rule in REGISTRY:
            assert rule.id in text
        assert f"{len(REGISTRY)} rules registered" in text

    def test_columns_do_not_collide(self):
        for line in render_rules().splitlines()[2:-2]:
            # Fixed-width columns leave at least two spaces between the
            # topic column and the title.
            assert "  " in line.strip()
