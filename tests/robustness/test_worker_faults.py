"""Worker robustness: a dead, hung, or unpicklable-result worker costs
a serial re-run of its chunk, never the run."""

import os
import threading
import time

from repro.core import AssessmentPipeline, PipelineConfig
from repro.core.parallel import run_tasks
from repro.obs import Tracer
from repro.testing import (
    Fault,
    FaultPlan,
    FaultyChecker,
    unpicklable_value,
)

from .conftest import assert_others_unchanged

#: Recorded at import; worker processes inherit it via fork, letting
#: task functions distinguish "in the parent" from "in a worker".
_MAIN_PID = os.getpid()


def _die_on_marked(task):
    marked, value = task
    if marked and os.getpid() != _MAIN_PID:
        os._exit(9)  # hard kill: no exception, no cleanup
    return value * 2


def _slow_in_pool(task):
    marked, value = task
    if marked and threading.current_thread() is not threading.main_thread():
        time.sleep(0.5)  # "hang" long past the deadline, pool-side only
    return value * 2


def _unpicklable_on_marked(task):
    marked, value = task
    if marked:
        return unpicklable_value()
    return value * 2


class TestRunTasksFaults:
    def test_dead_worker_falls_back_serially(self):
        tasks = [(False, 1), (True, 2), (False, 3), (False, 4)]
        tracer = Tracer()
        results = run_tasks(_die_on_marked, tasks, jobs=2,
                            executor="process", metrics=tracer.metrics)
        assert results == [2, 4, 6, 8]
        metrics = tracer.metrics
        assert metrics.counter("parallel.serial_fallbacks",
                               executor="process").value >= 1
        assert metrics.counter("parallel.task_retries",
                               executor="process").value >= 1

    def test_hung_task_times_out_and_recovers(self):
        tasks = [(True, 1), (False, 2), (False, 3)]
        tracer = Tracer()
        started = time.monotonic()
        results = run_tasks(_slow_in_pool, tasks, jobs=2,
                            executor="thread", timeout=0.05,
                            metrics=tracer.metrics)
        assert results == [2, 4, 6]
        # The run must not have waited out the full 0.5 s hang.
        assert time.monotonic() - started < 0.45
        assert tracer.metrics.counter("parallel.task_timeouts",
                                      executor="thread").value >= 1
        assert tracer.metrics.counter("parallel.serial_fallbacks",
                                      executor="thread").value >= 1

    def test_unpicklable_result_recomputed_in_parent(self):
        tasks = [(False, 1), (True, 2), (False, 3)]
        tracer = Tracer()
        results = run_tasks(_unpicklable_on_marked, tasks, jobs=2,
                            executor="process", metrics=tracer.metrics)
        assert results[0] == 2 and results[2] == 6
        # The marked task's value was recomputed in-process, so the
        # genuinely unpicklable object exists — it just never crossed
        # a process boundary.
        assert hasattr(results[1], "acquire")
        assert tracer.metrics.counter("parallel.task_errors",
                                      executor="process").value >= 1

    def test_no_counters_without_faults(self):
        tracer = Tracer()
        results = run_tasks(_die_on_marked,
                            [(False, 1), (False, 2)], jobs=2,
                            executor="thread", metrics=tracer.metrics)
        assert results == [2, 4]
        assert tracer.metrics.counter("parallel.serial_fallbacks",
                                      executor="thread").value == 0


class TestPipelineWorkerDeath:
    def test_killed_checker_worker_degrades_not_aborts(
            self, corpus_sources, target_path, benign_result):
        """A checker that kills its worker process outright: today that
        is a BrokenProcessPool aborting the run.  Now the chunk is
        recomputed serially; the exit fault re-fires in the parent as a
        contained WorkerExit crash, so the run completes degraded."""
        plan = FaultPlan([Fault("exit", site="check_unit",
                                path=target_path)])
        tracer = Tracer()
        result = AssessmentPipeline(PipelineConfig(
            jobs=2, executor="process", tracer=tracer,
            extra_checkers=(FaultyChecker(plan),))).run(corpus_sources)
        assert result.degraded
        assert result.crashes[0].exc_type == "WorkerExit"
        assert_others_unchanged(result, benign_result)
        assert tracer.metrics.counter("parallel.worker_deaths",
                                      executor="process").value >= 1
        assert tracer.metrics.counter("parallel.serial_fallbacks",
                                      executor="process").value >= 1

    def test_hung_checker_recovered_by_timeout(self, corpus_sources,
                                               target_path,
                                               benign_result):
        plan = FaultPlan([Fault("hang", site="check_unit",
                                path=target_path, seconds=0.4)])
        tracer = Tracer()
        result = AssessmentPipeline(PipelineConfig(
            jobs=2, executor="thread", task_timeout=0.05, tracer=tracer,
            extra_checkers=(FaultyChecker(plan),))).run(corpus_sources)
        # The hang is transient (fires once), so the serial re-run
        # completes cleanly: full results, zero degradation.
        assert not result.degraded
        assert_others_unchanged(result, benign_result)
        assert tracer.metrics.counter("parallel.task_timeouts",
                                      executor="thread").value >= 1
