"""Cache corruption recovery and the SourceError pickle round-trip."""

import os
import pickle

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.core.cache import CACHE_MISS
from repro.errors import LexError, ParseError, SourceError
from repro.testing import (
    Fault,
    FaultPlan,
    FaultyChecker,
    corrupt_cache_entries,
    plant_stale_tmp,
    unpicklable_value,
)

from .conftest import assert_others_unchanged


def _tmp_files(root):
    found = []
    for directory, _, names in os.walk(root):
        found.extend(name for name in names if ".tmp." in name)
    return found


class TestCorruptEntries:
    def test_corrupt_entries_recomputed(self, corpus_sources, tmp_path,
                                        benign_result):
        AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)),
            extra_checkers=(FaultyChecker(FaultPlan()),),
        )).run(corpus_sources)
        assert corrupt_cache_entries(ResultCache(str(tmp_path)), 3) == 3
        cache = ResultCache(str(tmp_path))
        result = AssessmentPipeline(PipelineConfig(
            cache=cache,
            extra_checkers=(FaultyChecker(FaultPlan()),),
        )).run(corpus_sources)
        assert cache.misses == 3  # exactly the damaged entries
        assert not result.degraded
        assert_others_unchanged(result, benign_result)
        assert result.reports == benign_result.reports

    def test_corrupt_get_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for("stage:1", "a.cc", "int x;")
        assert cache.put(key, {"value": 1})
        corrupt_cache_entries(cache, 1)
        assert cache.get(key) is CACHE_MISS


class TestPutContainment:
    def test_unpicklable_value_put_fails_cleanly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for("stage:1", "a.cc", "int x;")
        assert cache.put(key, unpicklable_value()) is False
        assert cache.get(key) is CACHE_MISS
        assert _tmp_files(str(tmp_path)) == []  # temp cleaned up

    def test_recursive_value_put_fails_cleanly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for("stage:1", "b.cc", "int y;")
        nested = []
        for _ in range(100000):
            nested = [nested]
        assert cache.put(key, nested) is False
        assert _tmp_files(str(tmp_path)) == []

    def test_unpicklable_checker_payload_end_to_end(
            self, corpus_sources, target_path, tmp_path, benign_result):
        """A checker result the cache cannot pickle: the put is
        swallowed, the assessment is complete and undegraded."""
        plan = FaultPlan([Fault("unpicklable", site="check_unit",
                                path=target_path)])
        result = AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)),
            extra_checkers=(FaultyChecker(plan),))).run(corpus_sources)
        assert not result.degraded
        assert_others_unchanged(result, benign_result)
        assert _tmp_files(str(tmp_path)) == []


class TestStaleTempSweep:
    def test_stale_temps_swept_on_first_write(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        stale = plant_stale_tmp(cache, 3)
        live = os.path.join(str(tmp_path), "00",
                            f"live.pkl.tmp.{os.getpid()}")
        with open(live, "wb") as handle:
            handle.write(b"concurrent writer")
        cache.put(cache.key_for("stage:1", "a.cc", "int x;"), 1)
        for path in stale:
            assert not os.path.exists(path)
        assert os.path.exists(live)  # a live writer's temp survives

    def test_sweep_stale_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plant_stale_tmp(cache, 2)
        assert cache.sweep_stale() == 2
        assert cache.sweep_stale() == 0


class TestSourceErrorPickle:
    def test_round_trip_preserves_location(self):
        error = ParseError("unexpected token", "pkg/a.cc", 12, 4)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is ParseError
        assert (clone.filename, clone.line, clone.column) == \
            ("pkg/a.cc", 12, 4)
        assert str(clone) == str(error)  # no doubled location prefix
        assert clone.message == "unexpected token"

    def test_round_trip_all_subclasses_and_defaults(self):
        for exc_type in (SourceError, LexError, ParseError):
            error = exc_type("boom")
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is exc_type
            assert str(clone) == "boom"
            assert clone.filename == "<memory>"

    def test_double_pickle_stable(self):
        error = LexError("bad char", "x.cu", 3, 9)
        once = pickle.loads(pickle.dumps(error))
        twice = pickle.loads(pickle.dumps(once))
        assert str(twice) == str(error) == "x.cu:3:9: bad char"

    def test_parse_error_survives_result_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        from repro.core.parallel import ParseOutcome
        error = ParseError("bad decl", "m/z.cc", 7, 2)
        key = cache.key_for("parse-test:1", "m/z.cc", "source")
        assert cache.put(key, ParseOutcome("m/z.cc", error=error))
        outcome = cache.get(key)
        assert str(outcome.error) == "m/z.cc:7:2: bad decl"
        assert outcome.error.line == 7
