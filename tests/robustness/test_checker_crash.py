"""Crash containment: a checker raising outside the ReproError
hierarchy degrades the run instead of aborting it."""

import pytest

from repro.checkers.base import Checker, CheckerReport, run_checkers
from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.errors import ComplianceError
from repro.rules import CHECKER_CRASH
from repro.testing import Fault, FaultInjected, FaultPlan, FaultyChecker

from .conftest import assert_others_unchanged


def crashing_config(target_path, **kwargs):
    plan = FaultPlan([Fault("raise", site="check_unit", path=target_path)])
    return PipelineConfig(extra_checkers=(FaultyChecker(plan),), **kwargs)


class TestContainment:
    def test_serial_run_completes_degraded(self, corpus_sources,
                                           target_path, benign_result):
        result = AssessmentPipeline(
            crashing_config(target_path)).run(corpus_sources)
        assert result.degraded
        crash = result.crashes[0]
        assert crash.checker == "fault_injector"
        # Serial runs go through the fused engine too, so containment
        # is per unit: the crash names the file it happened on.
        assert (crash.stage, crash.path) == ("check_unit", target_path)
        assert "FaultInjected" in crash.exc_type
        assert crash.traceback  # the original traceback is preserved
        assert_others_unchanged(result, benign_result)

    def test_engine_thread_pool(self, corpus_sources, target_path,
                                benign_result):
        result = AssessmentPipeline(crashing_config(
            target_path, jobs=2)).run(corpus_sources)
        assert result.degraded
        crash = result.crashes[0]
        # Engine containment is per unit: the crash names the file.
        assert (crash.stage, crash.path) == ("check_unit", target_path)
        assert_others_unchanged(result, benign_result)

    def test_engine_process_pool(self, corpus_sources, target_path,
                                 benign_result):
        result = AssessmentPipeline(crashing_config(
            target_path, jobs=2, executor="process")).run(corpus_sources)
        assert result.degraded
        assert result.crashes[0].path == target_path
        assert_others_unchanged(result, benign_result)

    def test_crash_surfaces_as_internal_finding(self, corpus_sources,
                                                target_path):
        result = AssessmentPipeline(crashing_config(
            target_path, jobs=2)).run(corpus_sources)
        report = result.reports["fault_injector"]
        assert [f.rule for f in report.findings] == [CHECKER_CRASH]
        assert target_path in report.findings[0].message

    def test_degradation_flows_into_outputs(self, corpus_sources,
                                            target_path):
        from repro.core.markdown import render_markdown
        result = AssessmentPipeline(
            crashing_config(target_path)).run(corpus_sources)
        assert "DEGRADED RUN" in result.render_summary()
        document = result.to_dict()
        assert document["degraded"] is True
        assert document["degradations"][0]["checker"] == "fault_injector"
        markdown = render_markdown(result)
        assert "## Degradations" in markdown
        assert "fault_injector" in markdown


class TestStrictMode:
    def test_strict_serial_reraises(self, corpus_sources, target_path):
        with pytest.raises(FaultInjected):
            AssessmentPipeline(crashing_config(
                target_path, strict=True)).run(corpus_sources)

    def test_strict_thread_engine_reraises(self, corpus_sources,
                                           target_path):
        with pytest.raises(FaultInjected):
            AssessmentPipeline(crashing_config(
                target_path, strict=True, jobs=2)).run(corpus_sources)

    def test_strict_process_engine_reraises(self, corpus_sources,
                                            target_path):
        # The worker's exception abandons the chunk; the serial re-run
        # in the parent reproduces it with a real traceback.
        with pytest.raises(FaultInjected):
            AssessmentPipeline(crashing_config(
                target_path, strict=True, jobs=2,
                executor="process")).run(corpus_sources)


class _FinalizeCrash(Checker):
    name = "finalize_crash"

    def check_unit(self, unit):
        return CheckerReport(checker=self.name)

    def finalize(self, report):
        raise ZeroDivisionError("ratio over empty denominator")


class _ReproRaiser(Checker):
    name = "repro_raiser"

    def check_unit(self, unit):
        raise ComplianceError("a real analysis error, not a crash")


class TestContainmentBoundaries:
    def test_finalize_crash_contained_in_engine(self, corpus_sources,
                                                tmp_path):
        # The cache forces the engine path even at jobs=1.
        result = AssessmentPipeline(PipelineConfig(
            cache=ResultCache(str(tmp_path)),
            extra_checkers=(_FinalizeCrash(),))).run(corpus_sources)
        assert result.degraded
        assert result.crashes[0].stage == "finalize"

    def test_repro_errors_are_not_contained(self, corpus_sources):
        # Expected analysis errors must keep their old propagation
        # semantics even in non-strict runs.
        with pytest.raises(ComplianceError):
            AssessmentPipeline(PipelineConfig(
                extra_checkers=(_ReproRaiser(),))).run(corpus_sources)

    def test_run_checkers_contains_and_counts(self):
        units = []  # no units needed: the finalize override crashes
        reports = run_checkers([_FinalizeCrash()], units)
        assert reports["finalize_crash"].crashes
        with pytest.raises(ZeroDivisionError):
            run_checkers([_FinalizeCrash()], units, strict=True)

    def test_crashed_bundles_never_cached(self, corpus_sources,
                                          target_path, tmp_path):
        import os
        import pickle
        cache = ResultCache(str(tmp_path))
        result = AssessmentPipeline(crashing_config(
            target_path, cache=cache, jobs=2)).run(corpus_sources)
        assert result.degraded
        for directory, _, names in os.walk(str(tmp_path)):
            for name in names:
                with open(os.path.join(directory, name), "rb") as handle:
                    value = pickle.load(handle)
                if isinstance(value, dict):  # a checker bundle
                    for report in value.values():
                        assert not report.crashes
