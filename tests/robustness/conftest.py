"""Shared fixtures for the fault-isolation suites."""

import pytest

from repro.core import AssessmentPipeline, PipelineConfig
from repro.corpus import apollo_spec, generate_corpus
from repro.testing import FaultPlan, FaultyChecker


@pytest.fixture(scope="package")
def corpus_sources():
    return generate_corpus(apollo_spec(scale=0.02)).sources()


@pytest.fixture(scope="package")
def target_path(corpus_sources):
    """The deterministic file every path-triggered fault arms on."""
    return sorted(corpus_sources)[0]


@pytest.fixture(scope="package")
def benign_result(corpus_sources):
    """Reference run with the injector installed but never firing.

    The valid baseline for faulted runs: same checker set, no faults.
    """
    return AssessmentPipeline(PipelineConfig(
        extra_checkers=(FaultyChecker(FaultPlan()),))).run(corpus_sources)


def assert_others_unchanged(result, reference, crashed="fault_injector"):
    """Every checker except the crashed one matches the reference."""
    assert list(result.reports) == list(reference.reports)
    for name, reference_report in reference.reports.items():
        if name == crashed:
            continue
        report = result.reports[name]
        assert report.stats == reference_report.stats, name
        assert [f.located() for f in report.findings] == \
            [f.located() for f in reference_report.findings], name
