"""CLI-level degradation: exit code 3, --strict, and the pinned
guarantee that a fault-free run is byte-identical to the old output."""

import json
import os

import pytest

from repro.core import AssessmentPipeline, PipelineConfig, ResultCache
from repro.core.cli import main
from repro.core.pipeline import AssessmentPipeline as _Pipeline
from repro.corpus import apollo_spec, generate_corpus
from repro.corpus.writer import read_tree
from repro.testing import (
    Fault,
    FaultInjected,
    FaultPlan,
    FaultyChecker,
    corrupt_cache_entries,
)


@pytest.fixture(scope="module")
def tree(tmp_path_factory):
    """A small multi-file corpus written to disk for the CLI."""
    root = tmp_path_factory.mktemp("tree")
    sources = generate_corpus(apollo_spec(scale=0.02)).sources()
    for path, text in sorted(sources.items())[:8]:
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return str(root)


@pytest.fixture(scope="module")
def reference_result(tree):
    """Fault-free reference run; must be requested *before*
    ``inject_crash`` in a test's signature so it is built unpatched."""
    return AssessmentPipeline(PipelineConfig()).run(read_tree(tree))


@pytest.fixture()
def inject_crash(monkeypatch, tree):
    """Patch the pipeline's checker list to include one crasher, armed
    on a deterministic file of the tree."""
    target = sorted(read_tree(tree))[0]
    original = _Pipeline._checkers

    def patched(self, sources):
        checkers = original(self, sources)
        checkers.append(FaultyChecker(FaultPlan([
            Fault("raise", site="check_unit", path=target)])))
        return checkers

    monkeypatch.setattr(_Pipeline, "_checkers", patched)
    return target


class TestDegradedExitCode:
    def test_acceptance_scenario(self, tree, reference_result,
                                 inject_crash, tmp_path, capsys):
        """One crashing checker + one corrupt cache entry: exit 3, the
        other checkers' findings unchanged, outputs name the crasher."""
        cache_dir = str(tmp_path / "cache")
        json_path = str(tmp_path / "out.json")
        markdown_path = str(tmp_path / "out.md")
        reference = reference_result

        # Warm the cache (degraded warm run), then damage one entry.
        assert main([tree, "--cache", cache_dir]) == 3
        corrupt_cache_entries(ResultCache(cache_dir), 1)

        code = main([tree, "--jobs", "2", "--cache", cache_dir,
                     "--json", json_path, "--markdown", markdown_path])
        assert code == 3
        out = capsys.readouterr().out
        assert "DEGRADED RUN" in out
        assert "fault_injector" in out

        document = json.load(open(json_path))
        assert document["degraded"] is True
        assert document["degradations"][0]["checker"] == "fault_injector"
        # Every real checker's findings match the fault-free run.
        for name, count in reference.to_dict()[
                "checker_findings"].items():
            assert document["checker_findings"][name] == count, name

        markdown = open(markdown_path).read()
        assert "## Degradations" in markdown
        assert "fault_injector" in markdown
        assert inject_crash in markdown  # the crashed file is named

    def test_strict_aborts_with_original_exception(self, tree,
                                                   inject_crash):
        with pytest.raises(FaultInjected):
            main([tree, "--strict"])

    def test_strict_parallel_aborts_too(self, tree, inject_crash):
        with pytest.raises(FaultInjected):
            main([tree, "--strict", "--jobs", "2"])

    def test_bad_task_timeout_exits_2(self, tree, capsys):
        assert main([tree, "--task-timeout", "0"]) == 2
        assert "task-timeout" in capsys.readouterr().err


class TestFaultFreeByteIdentical:
    def test_clean_run_exits_0_without_degradation_output(self, tree,
                                                          capsys):
        assert main([tree]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" not in out

    def test_strict_flag_is_inert_on_clean_runs(self, tree, capsys):
        assert main([tree]) == 0
        default_out = capsys.readouterr().out
        assert main([tree, "--strict"]) == 0
        assert capsys.readouterr().out == default_out

    def test_clean_json_and_markdown_carry_no_degradation_keys(
            self, tree, tmp_path, capsys):
        from repro.core.markdown import render_markdown
        result = AssessmentPipeline(PipelineConfig()).run(
            read_tree(tree))
        assert not result.degraded
        assert "degraded" not in result.to_dict()
        assert "degradations" not in result.to_dict()
        assert "## Degradations" not in render_markdown(result)
        assert "DEGRADED" not in result.render_summary()

    def test_strict_pipeline_result_identical_to_default(self, tree):
        sources = read_tree(tree)
        default = AssessmentPipeline(PipelineConfig()).run(sources)
        strict = AssessmentPipeline(
            PipelineConfig(strict=True)).run(sources)
        assert default.to_dict() == strict.to_dict()
        assert default.render_summary() == strict.render_summary()
