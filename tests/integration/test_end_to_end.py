"""Integration tests: the paper's experiments end to end.

Each test class corresponds to one experiment of DESIGN.md's index and
asserts the *shape* the paper reports (who wins, by what rough factor),
never exact testbed numbers.
"""

import pytest

from repro.iso26262 import GapSeverity, Verdict


class TestFigure3Pipeline:
    """Figure 3 on the shared scaled corpus."""

    def test_figure3_rows_complete(self, small_corpus, small_assessment):
        rows = small_assessment.figure3()
        assert len(rows) == 10
        for row in rows:
            assert row["loc"] > 0
            assert row["functions"] > 0
            assert row["cc>5"] >= row["cc>10"] >= row["cc>20"] \
                >= row["cc>50"]

    def test_perception_is_largest(self, small_assessment):
        rows = {row["module"]: row for row in small_assessment.figure3()}
        largest = max(rows.values(), key=lambda row: row["loc"])
        assert largest["module"] == "perception"

    def test_cc_total_matches_calibration(self, small_corpus,
                                          small_assessment):
        total = sum(row["cc>10"] for row in small_assessment.figure3())
        assert total == small_corpus.spec.expected_over_ten


class TestTablesPipeline:
    """Tables 1-3 verdicts on the scaled corpus match the paper's story."""

    def test_table1_story(self, small_assessment):
        table = small_assessment.tables["modeling_coding"]
        non_compliant = {entry.technique.key
                         for entry in table.assessments
                         if entry.verdict is Verdict.NON_COMPLIANT}
        assert {"low_complexity", "language_subsets",
                "strong_typing", "defensive_implementation"} <= non_compliant
        compliant = {entry.technique.key for entry in table.assessments
                     if entry.verdict is Verdict.COMPLIANT}
        assert {"style_guides", "naming_conventions"} <= compliant

    def test_table3_story(self, small_assessment):
        table = small_assessment.tables["unit_design"]
        gaps = {entry.technique.key for entry in table.assessments
                if entry.verdict in (Verdict.NON_COMPLIANT,
                                     Verdict.PARTIAL)}
        assert {"single_entry_exit", "no_dynamic_objects",
                "variable_initialization", "avoid_globals",
                "limited_pointers", "no_unconditional_jumps",
                "no_recursion"} <= gaps

    def test_certification_gaps_critical(self, small_assessment):
        assert small_assessment.tables["modeling_coding"].worst_gap \
            is GapSeverity.CRITICAL
        assert small_assessment.tables["unit_design"].worst_gap \
            is GapSeverity.CRITICAL


class TestObservationsPipeline:
    def test_static_observations_supported(self, small_assessment):
        # Observation 13 (oversized components) needs full-size modules
        # and is asserted by the full-corpus benchmark instead.
        by_number = {observation.number: observation
                     for observation in small_assessment.observations}
        for number in (1, 2, 3, 4, 5, 6, 7, 8, 9, 14):
            assert by_number[number].supported, number


class TestFigure5Integration:
    @pytest.fixture(scope="class")
    def campaign(self):
        from repro.dnn.minic_yolo import run_yolo_coverage
        return run_yolo_coverage()

    def test_shape_matches_paper(self, campaign):
        assert campaign.average("statement") > campaign.average("branch") \
            > campaign.average("mcdc")
        assert campaign.minimum("mcdc") < 40.0

    def test_observation_10_follows(self, campaign):
        from repro.iso26262 import tooling_observations
        observations = tooling_observations(
            coverage_average=campaign.average("statement"))
        assert observations[0].supported


class TestFigure6Integration:
    """CUDA stencils ported to the CPU, coverage measured."""

    @pytest.fixture(scope="class")
    def coverages(self):
        import numpy as np
        from repro.coverage import CoverageCollector, summarize_collector
        from repro.gpu import CudaRuntime
        from repro.gpu.kernels import ALL_KERNELS_SOURCE
        from repro.gpu.kernels.stencil import launch_stencil2d, \
            launch_stencil3d
        from repro.lang.minic import parse_program

        program = parse_program(ALL_KERNELS_SOURCE, "kernels.cu")
        collector = CoverageCollector(program)
        runtime = CudaRuntime(program, tracer=collector)
        rng = np.random.default_rng(0)
        launch_stencil2d(runtime, rng.normal(size=(8, 8)), 0.2)
        launch_stencil3d(runtime, rng.normal(size=(4, 4, 4)), 0.1)
        return summarize_collector(collector, "stencils.cu",
                                   with_mcdc=False, exclude_uncalled=True)

    def test_coverage_measured_not_full(self, coverages):
        # The paper: "full code coverage is not achieved either for
        # statements or branches" — boundary branches partially hit.
        assert 50.0 < coverages.statement_percent <= 100.0
        assert coverages.branch_percent < 100.0

    def test_branch_not_above_statement(self, coverages):
        assert coverages.branch_percent <= coverages.statement_percent


class TestFigure7And8Integration:
    def test_open_source_route_viable(self):
        from repro.iso26262 import tooling_observations
        from repro.perf import relative_to_baseline, run_case_study
        results = run_case_study()
        relatives = relative_to_baseline(results)
        open_vs_closed = relatives["cuDNN"] / relatives["ISAAC"]
        observations = tooling_observations(
            coverage_average=80.0,
            open_vs_closed_relative=open_vs_closed)
        assert observations[2].supported  # Observation 12

    def test_crossover_structure(self):
        """cuDNN direct conv beats GEMM lowering; CPU loses everywhere."""
        from repro.perf import relative_to_baseline, run_case_study
        relatives = relative_to_baseline(run_case_study())
        assert relatives["cuDNN"] < relatives["cuBLAS"]
        assert relatives["ISAAC"] < relatives["CUTLASS"]
        assert min(relatives["ATLAS"], relatives["OpenBLAS"]) > \
            max(relatives["cuBLAS"], relatives["CUTLASS"]) * 10


class TestFigure4Integration:
    """The paper's CUDA excerpt, run through the actual checkers."""

    def test_scale_bias_excerpt_findings(self):
        from repro.checkers import MisraChecker, UnitDesignChecker
        from repro.gpu.kernels import SCALE_BIAS_CUDA_EXCERPT
        from repro.lang import parse_translation_unit
        unit = parse_translation_unit(SCALE_BIAS_CUDA_EXCERPT,
                                      "scale_bias.cu")
        kernel = unit.function("scale_bias_kernel")
        assert kernel.is_cuda_kernel
        assert all(parameter.is_pointer
                   for parameter in kernel.parameters[:2])
        wrapper = unit.function("scale_bias_gpu")
        assert wrapper.allocation_calls >= 2  # the cudaMallocs
        assert wrapper.kernel_launches == 1
        misra = MisraChecker().check_project([unit])
        assert misra.stats["gpu_functions_with_pointers"] == 1
        assert any(finding.rule == "D4.12" for finding in misra.findings)

    def test_kernel_actually_executes(self):
        """The same Figure 4 kernel runs under the GPU emulator."""
        import numpy as np
        from repro.gpu import CudaRuntime
        from repro.gpu.kernels import ALL_KERNELS_SOURCE
        from repro.gpu.kernels.yolo_layers import launch_scale_bias, \
            scale_bias_reference
        runtime = CudaRuntime(ALL_KERNELS_SOURCE)
        rng = np.random.default_rng(1)
        tensor = rng.normal(size=(2, 3, 4, 4))
        biases = rng.normal(size=3)
        assert np.allclose(launch_scale_bias(runtime, tensor, biases),
                           scale_bias_reference(tensor, biases))


class TestMiniCvsCppModelAgreement:
    """DESIGN.md ablation: fuzzy CC equals strict-AST CC on shared subset."""

    SHARED = """
    int classify(int score, int mode) {
      int result = 0;
      if (score > 50 && mode == 1) {
        result = 1;
      } else if (score > 20 || mode == 2) {
        result = 2;
      }
      for (int i = 0; i < score; i++) {
        while (result < 100) {
          result += i;
          break;
        }
      }
      switch (mode) {
        case 0:
          result += 1;
          break;
        case 1:
          result += 2;
          break;
        default:
          result += 3;
      }
      return result > 0 ? result : 0;
    }
    """

    def test_complexity_agreement(self):
        from repro.lang import parse_translation_unit
        from repro.lang.minic import parse_program
        fuzzy = parse_translation_unit(self.SHARED, "shared.c")
        fuzzy_cc = fuzzy.function("classify").cyclomatic_complexity
        strict = parse_program(self.SHARED, "shared.c")
        # Strict CC = decisions + case labels + 1; logical operators are
        # decomposed conditions of their decision.
        decisions = strict.decisions
        extra_conditions = sum(decision.condition_count - 1
                               for decision in decisions)
        cases = sum(1 for statement in strict.statements
                    if statement.__class__.__name__ == "SwitchCase"
                    and getattr(statement, "value", None) is not None)
        strict_cc = 1 + len(decisions) + extra_conditions + cases
        assert fuzzy_cc == strict_cc
