"""Public-API surface tests: what README promises, importable and typed."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.lang",
    "repro.lang.minic",
    "repro.metrics",
    "repro.checkers",
    "repro.coverage",
    "repro.gpu",
    "repro.gpu.kernels",
    "repro.dnn",
    "repro.perf",
    "repro.corpus",
    "repro.iso26262",
    "repro.core",
]


class TestImports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"


class TestReadmeSnippets:
    def test_quickstart_snippet(self):
        from repro import assess_sources
        result = assess_sources({
            "perception/tracker.cc":
                "int g_count = 0;\nfloat Track(float x) { return x; }\n",
        })
        assert "Table 1" in result.render_summary()
        assert result.figure3()

    def test_corpus_snippet(self):
        from repro import apollo_spec, assess_corpus, generate_corpus
        corpus = generate_corpus(apollo_spec(scale=0.02))
        result = assess_corpus(corpus)
        assert result.unit_count == len(corpus.files)

    def test_coverage_snippet(self):
        from repro.coverage import CoverageRunner, TestVector
        runner = CoverageRunner(
            "int f(int a) { if (a) { return 1; } return 0; }", "f.c")
        runner.run_suite([TestVector("f", (1,))])
        row = runner.coverage(exclude_uncalled=True).as_row()
        assert set(row) == {"file", "statement", "branch", "mcdc"}

    def test_error_hierarchy_single_catch(self):
        from repro import ReproError
        from repro.errors import (GpuMemoryError, LexError,
                                  MiniCRuntimeError, ParseError)
        for error_type in (GpuMemoryError, LexError, MiniCRuntimeError,
                           ParseError):
            assert issubclass(error_type, ReproError)


class TestPublicDocstrings:
    def test_key_classes_documented(self):
        from repro.checkers import MisraChecker
        from repro.core import AssessmentPipeline
        from repro.coverage import CoverageRunner
        from repro.gpu import CudaRuntime
        from repro.iso26262 import ComplianceEngine
        from repro.lang.minic import Interpreter
        for cls in (MisraChecker, AssessmentPipeline, CoverageRunner,
                    CudaRuntime, ComplianceEngine, Interpreter):
            assert cls.__doc__ and len(cls.__doc__) > 20, cls
