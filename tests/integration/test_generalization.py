"""The paper's generalization claim: conclusions hold for other frameworks.

Section 2: "All of them have similar design and implementation
characteristics, so the conclusions we derive for Apollo in this work
hold to a large extent for all AD frameworks."  The Autoware-like corpus
exercises that claim: a different framework profile, same observations.
"""

import pytest

from repro.core import assess_corpus
from repro.corpus import autoware_spec, generate_corpus
from repro.iso26262 import Verdict


@pytest.fixture(scope="module")
def autoware_assessment():
    return assess_corpus(generate_corpus(autoware_spec(scale=0.06)))


class TestAutowareGeneralization:
    def test_same_observation_pattern(self, autoware_assessment,
                                      small_assessment):
        """The per-observation support pattern matches Apollo's (13 is
        scale-dependent for both)."""
        def pattern(result):
            return {observation.number: observation.supported
                    for observation in result.observations
                    if observation.number != 13}
        assert pattern(autoware_assessment) == pattern(small_assessment)

    def test_core_gaps_reproduce(self, autoware_assessment):
        table = autoware_assessment.tables["modeling_coding"]
        for key in ("low_complexity", "language_subsets", "strong_typing",
                    "defensive_implementation"):
            assert table.assessment(key).verdict is Verdict.NON_COMPLIANT

    def test_style_discipline_reproduces(self, autoware_assessment):
        table = autoware_assessment.tables["modeling_coding"]
        assert table.assessment("style_guides").verdict \
            is Verdict.COMPLIANT
        assert table.assessment("naming_conventions").verdict \
            is Verdict.COMPLIANT

    def test_gpu_code_present_and_idiomatic(self, autoware_assessment):
        misra = autoware_assessment.evidence.get("language_subset")
        assert misra.stat("gpu_functions") > 0
        assert misra.stat("gpu_functions_with_pointers") == \
            misra.stat("gpu_functions")

    def test_distinct_module_decomposition(self, autoware_assessment,
                                           small_assessment):
        autoware_modules = {module.name
                            for module in autoware_assessment.modules}
        apollo_modules = {module.name
                          for module in small_assessment.modules}
        assert autoware_modules != apollo_modules
        assert "detection" in autoware_modules
        assert "canbus" in apollo_modules

    def test_frameworks_not_identical(self, autoware_assessment,
                                      small_assessment):
        assert autoware_assessment.total_loc != \
            small_assessment.total_loc
