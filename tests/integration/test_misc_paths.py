"""Edge-path tests across packages (error branches and small helpers)."""

import numpy as np
import pytest

from repro.corpus import apollo_spec, generate_corpus, write_corpus
from repro.corpus.generator import Corpus, CorpusFile
from repro.errors import CorpusError
from repro.gpu import CudaRuntime, Dim3
from repro.gpu.kernels import ALL_KERNELS_SOURCE


class TestPerfEdgeCases:
    def test_relative_without_baseline_rejected(self):
        from repro.perf import relative_to_baseline
        from repro.perf.detection import DetectionResult
        results = [DetectionResult(implementation="ISAAC",
                                   open_source=True, device="gpu",
                                   seconds_per_frame=0.01)]
        with pytest.raises(ValueError):
            relative_to_baseline(results)

    def test_gemm_gflops_positive_for_all_workloads(self):
        from repro.perf import CuBlasModel, GEMM_WORKLOADS
        model = CuBlasModel()
        for workload in GEMM_WORKLOADS:
            assert model.gemm_gflops(workload.shape) > 0

    def test_detection_result_fps(self):
        from repro.perf.detection import DetectionResult
        result = DetectionResult(implementation="x", open_source=False,
                                 device="d", seconds_per_frame=0.02)
        assert result.fps == pytest.approx(50.0)


class TestGpuEdgeCases:
    def test_launch_with_tuple_geometry(self):
        runtime = CudaRuntime(ALL_KERNELS_SOURCE)
        pointer = runtime.to_device([1.0, -2.0, 3.0, -4.0])
        runtime.launch("leaky_activate_kernel", (2, 2), 1, [pointer, 4])
        values = runtime.cuda_memcpy_dtoh(pointer)
        assert values == [1.0, -0.2, 3.0, -0.4]

    def test_null_pointer_argument_accepted(self):
        runtime = CudaRuntime(
            "__global__ void probe(float *p, int n) { "
            "if (p == 0) { return; } p[0] = 1.0f; }")
        runtime.launch("probe", 1, 1, [None, 0])  # no crash

    def test_offset_view_in_launch(self):
        runtime = CudaRuntime(ALL_KERNELS_SOURCE)
        pointer = runtime.to_device([0.0] * 8)
        shifted = pointer.offset_by(4)
        runtime.launch("leaky_activate_kernel", 1, 4, [shifted, 4])
        assert runtime.cuda_memcpy_dtoh(pointer)[:4] == [0.0] * 4

    def test_to_device_empty_sequence(self):
        runtime = CudaRuntime(ALL_KERNELS_SOURCE)
        pointer = runtime.to_device([])
        assert pointer.size == 1  # minimum allocation


class TestWeightStore:
    def test_image_deterministic_and_bounded(self):
        from repro.dnn import WeightStore
        first = WeightStore(seed=3).image(16, 16)
        second = WeightStore(seed=3).image(16, 16)
        assert np.array_equal(first, second)
        assert first.min() >= 0.0
        assert first.max() <= 1.0
        assert first.shape == (1, 3, 16, 16)

    def test_conv_weights_he_scale(self):
        from repro.dnn import WeightStore
        weights = WeightStore(seed=1).conv_weights(64, 32, 3)
        fan_in = 32 * 9
        assert weights.std() == pytest.approx(np.sqrt(2.0 / fan_in),
                                              rel=0.2)


class TestCorpusWriterSafety:
    def test_absolute_path_rejected(self, tmp_path):
        corpus = Corpus(apollo_spec(scale=0.01), [
            CorpusFile(path="/etc/evil.cc", source="int x;\n",
                       module="m")])
        with pytest.raises(CorpusError):
            write_corpus(corpus, str(tmp_path))

    def test_parent_escape_rejected(self, tmp_path):
        corpus = Corpus(apollo_spec(scale=0.01), [
            CorpusFile(path="../evil.cc", source="int x;\n", module="m")])
        with pytest.raises(CorpusError):
            write_corpus(corpus, str(tmp_path))


class TestCliSeed:
    def test_seed_changes_corpus(self, capsys):
        from repro.core.cli import main
        assert main(["--corpus", "0.02", "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["--corpus", "0.02", "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second


class TestReportRendering:
    def test_observations_to_dict_sorted(self, small_assessment):
        from repro.iso26262 import observations_to_dict
        payload = observations_to_dict(small_assessment.observations)
        numbers = [entry["number"] for entry in payload]
        assert numbers == sorted(numbers)

    def test_coverage_row_without_mcdc(self):
        from repro.coverage import CoverageRunner, TestVector
        runner = CoverageRunner(
            "int f(int a) { if (a) { return 1; } return 0; }", "f.c")
        runner.run_vector(TestVector("f", (1,)))
        row = runner.coverage(with_mcdc=False).as_row()
        assert "mcdc" not in row

    def test_campaign_render_without_mcdc(self):
        from repro.coverage import CoverageRunner, TestVector, \
            build_campaign
        runner = CoverageRunner(
            "int f(int a) { if (a) { return 1; } return 0; }", "f.c")
        runner.run_vector(TestVector("f", (1,)))
        campaign = build_campaign([runner.coverage(with_mcdc=False)])
        rendered = campaign.render()
        assert "mcdc" not in rendered
        assert "AVERAGE" in rendered
