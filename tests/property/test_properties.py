"""Property-based tests (hypothesis) on core invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage import (
    CoverageCollector,
    measure_branch_coverage,
    measure_mcdc_coverage,
    measure_statement_coverage,
)
from repro.dnn.nms import Box, iou, nms
from repro.gpu import Dim3
from repro.lang.lexer import tokenize
from repro.lang.minic import Interpreter, parse_program
from repro.lang.minic.interpreter import _c_divide, _c_modulo
from repro.lang.tokens import TokenKind
from repro.perf.model import stable_jitter

identifiers = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)


class TestLexerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9),
                    min_size=1, max_size=20))
    def test_integer_literals_tokenize_losslessly(self, values):
        source = " ".join(str(value) for value in values)
        tokens = tokenize(source)
        assert [token.text for token in tokens] == \
            [str(value) for value in values]
        assert all(token.kind is TokenKind.NUMBER for token in tokens)

    @given(st.lists(identifiers, min_size=1, max_size=20))
    def test_identifier_spellings_preserved(self, names):
        source = " ; ".join(names)
        tokens = [token for token in tokenize(source)
                  if token.kind in (TokenKind.IDENTIFIER, TokenKind.KEYWORD)]
        assert [token.text for token in tokens] == names

    @given(st.text(alphabet="abc123+-*/%=<>!&|(){}[];, \n\t", max_size=200))
    def test_lenient_lexer_never_raises(self, source):
        tokens = tokenize(source, strict=False)
        for token in tokens:
            assert token.line >= 1
            assert token.column >= 1

    @given(st.text(alphabet="abcxyz_ 0123456789;{}()", max_size=100))
    def test_token_positions_monotone(self, source):
        tokens = tokenize(source, strict=False)
        positions = [(token.line, token.column) for token in tokens]
        assert positions == sorted(positions)


class TestMiniCSemanticProperties:
    @given(st.integers(-10 ** 6, 10 ** 6), st.integers(-10 ** 6, 10 ** 6))
    def test_c_division_identity(self, a, b):
        if b == 0:
            return
        quotient = _c_divide(a, b, 0)
        remainder = _c_modulo(a, b, 0)
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.integers(-1000, 1000))
    @settings(max_examples=50)
    def test_interpreter_matches_python_for_polynomials(self, a, b, c):
        source = "int f(int a, int b, int c) { return a * b + c - a; }"
        interpreter = Interpreter(parse_program(source))
        assert interpreter.run("f", [a, b, c]) == a * b + c - a

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_minic_sum_matches_python(self, values):
        source = ("float total(float *x, int n) { float s = 0.0f; "
                  "for (int i = 0; i < n; i++) { s += x[i]; } return s; }")
        interpreter = Interpreter(parse_program(source))
        result = interpreter.run("total", [list(values), len(values)])
        assert math.isclose(result, sum(values), rel_tol=1e-9,
                            abs_tol=1e-9)

    @given(st.integers(0, 30))
    @settings(max_examples=20)
    def test_minic_branch_agrees_with_python(self, x):
        source = ("int f(int x) { if (x > 10 && x % 2 == 0) { return 1; } "
                  "return 0; }")
        interpreter = Interpreter(parse_program(source))
        expected = 1 if (x > 10 and x % 2 == 0) else 0
        assert interpreter.run("f", [x]) == expected


class TestCoverageProperties:
    SOURCE = """
    int classify(int a, int b) {
      int result = 0;
      if (a > 0 && b > 0) {
        result = 1;
      } else if (a > 0 || b > 0) {
        result = 2;
      }
      for (int i = 0; i < a; i++) {
        result += i % 3;
      }
      return result;
    }
    """

    @given(st.lists(st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
                    max_size=12))
    @settings(max_examples=40)
    def test_coverage_bounded_and_monotone(self, inputs):
        program = parse_program(self.SOURCE)
        collector = CoverageCollector(program)
        interpreter = Interpreter(program, tracer=collector)
        previous = 0.0
        for a, b in inputs:
            interpreter.run("classify", [a, b])
            stmt = measure_statement_coverage(collector).percent
            assert 0.0 <= stmt <= 100.0
            assert stmt >= previous  # coverage never decreases
            previous = stmt

    @given(st.lists(st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
                    min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_metric_ordering_invariant(self, inputs):
        """MC/DC is never easier than branch, branch never easier than
        covering some statement when execution happened."""
        program = parse_program(self.SOURCE)
        collector = CoverageCollector(program)
        interpreter = Interpreter(program, tracer=collector)
        for a, b in inputs:
            interpreter.run("classify", [a, b])
        stmt = measure_statement_coverage(collector).percent
        branch = measure_branch_coverage(collector).percent
        mcdc = measure_mcdc_coverage(collector).percent
        assert stmt >= branch - 1e-9 or branch <= 100.0
        assert mcdc <= branch + 1e-9

    @given(st.lists(st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
                    min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_unique_cause_never_exceeds_masking(self, inputs):
        program = parse_program(self.SOURCE)
        collector = CoverageCollector(program)
        interpreter = Interpreter(program, tracer=collector)
        for a, b in inputs:
            interpreter.run("classify", [a, b])
        masking = measure_mcdc_coverage(collector, "masking").covered
        unique = measure_mcdc_coverage(collector, "unique-cause").covered
        assert unique <= masking


boxes = st.builds(
    Box,
    x=st.floats(0.0, 1.0), y=st.floats(0.0, 1.0),
    w=st.floats(0.01, 0.5), h=st.floats(0.01, 0.5),
    score=st.floats(0.0, 1.0), class_id=st.integers(0, 3))


class TestNmsProperties:
    @given(boxes, boxes)
    def test_iou_bounds_and_symmetry(self, a, b):
        value = iou(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert math.isclose(value, iou(b, a), abs_tol=1e-12)

    @given(boxes)
    def test_iou_reflexive(self, box):
        assert math.isclose(iou(box, box), 1.0, abs_tol=1e-9)

    @given(st.lists(boxes, max_size=20), st.floats(0.1, 0.9))
    def test_nms_output_subset_and_sorted(self, candidates, threshold):
        kept = nms(candidates, threshold)
        assert len(kept) <= len(candidates)
        scores = [box.score for box in kept]
        assert scores == sorted(scores, reverse=True)
        # Surviving same-class pairs never overlap beyond the threshold.
        for i, first in enumerate(kept):
            for second in kept[i + 1:]:
                if first.class_id == second.class_id:
                    assert iou(first, second) < threshold + 1e-9


class TestCorpusProperties:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_generation_deterministic_per_seed(self, seed):
        from repro.corpus import apollo_spec, generate_corpus
        first = generate_corpus(apollo_spec(scale=0.01, seed=seed))
        second = generate_corpus(apollo_spec(scale=0.01, seed=seed))
        assert first.sources() == second.sources()

    @given(st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_factory_hits_any_complexity_target(self, target):
        from repro.corpus.functions import FunctionFactory, FunctionRequest
        from repro.lang import parse_translation_unit
        factory = FunctionFactory(random.Random(target))
        lines = factory.render(FunctionRequest(name="Probe",
                                               complexity=target))
        unit = parse_translation_unit("\n".join(lines), "probe.cc")
        assert unit.function("Probe").cyclomatic_complexity == target


class TestMiscProperties:
    @given(st.integers(1, 10 ** 6), st.integers(1, 1024))
    def test_grid_for_covers_exactly(self, threads, block):
        from repro.gpu import grid_for
        grid = grid_for(threads, block)
        assert grid.x * block >= threads
        assert (grid.x - 1) * block < threads

    @given(st.integers(1, 64), st.integers(1, 8), st.integers(1, 8))
    def test_dim3_index_count(self, x, y, z):
        dim = Dim3(x, y, z)
        assert len(list(dim.indices())) == dim.total

    @given(st.text(max_size=50), st.floats(0.5, 1.0), st.floats(1.0, 1.5))
    def test_stable_jitter_bounds(self, key, low, high):
        value = stable_jitter(key, low, high)
        assert low <= value <= high
        assert value == stable_jitter(key, low, high)
