"""Property-based tests for the extension modules."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage import (
    CoverageCollector,
    evaluate_decision,
    measure_mcdc_coverage,
    suggest_mcdc_vectors,
)
from repro.lang.minic import Interpreter, parse_program
from repro.lang import tokenize
from repro.metrics import measure_tokens, npath_program
from repro.metrics.halstead import maintainability_index


class TestHalsteadProperties:
    @given(st.lists(st.sampled_from(["a", "b", "c", "+", "-", "*", "1",
                                     "2"]),
                    min_size=1, max_size=60))
    def test_volume_nonnegative_and_monotone(self, pieces):
        source = " ".join(pieces)
        metrics = measure_tokens(tokenize(source, strict=False))
        assert metrics.volume >= 0.0
        doubled = measure_tokens(tokenize(source + " " + source,
                                          strict=False))
        assert doubled.volume >= metrics.volume

    @given(st.floats(0, 1e6), st.integers(1, 100), st.integers(1, 10000))
    def test_maintainability_bounds(self, volume, cc, loc):
        value = maintainability_index(volume, cc, loc)
        assert 0.0 <= value <= 100.0


class TestNpathProperties:
    @given(st.integers(1, 10))
    @settings(max_examples=10)
    def test_sequential_ifs_exponential(self, count):
        body = " ".join(f"if (a > {i}) {{ b += 1; }}"
                        for i in range(count))
        program = parse_program(f"int f(int a, int b) {{ {body} "
                                f"return b; }}")
        assert npath_program(program)["f"] == 2 ** count

    @given(st.integers(0, 6), st.integers(0, 6))
    @settings(max_examples=20)
    def test_npath_at_least_one(self, ifs, loops):
        parts = [f"if (a > {i}) {{ b += 1; }}" for i in range(ifs)]
        parts += [f"while (b > {i * 7}) {{ b -= 1; }}"
                  for i in range(loops)]
        program = parse_program(
            f"int f(int a, int b) {{ {' '.join(parts)} return b; }}")
        assert npath_program(program)["f"] >= 1


DECISION_SOURCES = [
    "int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }",
    "int f(int a, int b) { if (a > 0 || b > 0) { return 1; } return 0; }",
    "int f(int a, int b, int c) { if (a > 0 && (b > 0 || c > 0)) "
    "{ return 1; } return 0; }",
    "int f(int a, int b, int c) { if ((a > 0 || b > 0) && c > 0) "
    "{ return 1; } return 0; }",
]


class TestSuggestionProperties:
    @given(st.sampled_from(DECISION_SOURCES),
           st.lists(st.tuples(st.booleans(), st.booleans(),
                              st.booleans()),
                    max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_following_all_suggestions_completes_mcdc(self, source,
                                                      seed_vectors):
        program = parse_program(source)
        collector = CoverageCollector(program)
        interpreter = Interpreter(program, tracer=collector)
        arity = len(program.functions[0].parameters)
        for vector in seed_vectors:
            interpreter.run("f", [1 if value else 0
                                  for value in vector[:arity]])
        for _ in range(8):
            suggestions = suggest_mcdc_vectors(collector)
            if not suggestions:
                break
            for suggestion in suggestions:
                for assignment in suggestion.needed_assignments:
                    interpreter.run("f", [1 if value else 0
                                          for value in assignment])
        assert measure_mcdc_coverage(collector).percent == 100.0

    @given(st.sampled_from(DECISION_SOURCES),
           st.lists(st.booleans(), min_size=3, max_size=3))
    @settings(max_examples=30)
    def test_evaluate_decision_matches_interpreter(self, source, values):
        program = parse_program(source)
        decision = program.decisions[0]
        arity = len(program.functions[0].parameters)
        assignment = tuple(values[:arity])
        # The leaf conditions are `x > 0` over the parameters in order,
        # so a truth assignment maps directly to arguments.
        outcome, _ = evaluate_decision(decision, assignment)
        interpreter = Interpreter(program)
        result = interpreter.run("f", [1 if value else 0
                                       for value in assignment])
        assert bool(result) == outcome


class TestCorpusFactoryProperties:
    @given(st.integers(0, 10 ** 6), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_factory_deterministic_per_seed(self, seed, target):
        from repro.corpus.functions import FunctionFactory, \
            FunctionRequest
        first = FunctionFactory(random.Random(seed)).render(
            FunctionRequest(name="P", complexity=target))
        second = FunctionFactory(random.Random(seed)).render(
            FunctionRequest(name="P", complexity=target))
        assert first == second


class TestUnparseProperties:
    OPERATORS = ["+", "-", "*", "/", "%", "<", ">", "==", "!=", "&&",
                 "||", "&", "|", "^"]

    @given(st.recursive(
        st.sampled_from(["a", "b", "c", "2", "3", "7"]),
        lambda inner: st.tuples(
            inner, st.sampled_from(["+", "-", "*", "/", "%", "<", ">",
                                    "==", "!=", "&&", "||", "&", "|",
                                    "^"]),
            inner).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        max_leaves=12))
    @settings(max_examples=60, deadline=None)
    def test_unparse_roundtrip_preserves_semantics(self, expression):
        from repro.lang.minic import (Interpreter, parse_program,
                                      unparse_expression)
        source = (f"int f(int a, int b, int c) "
                  f"{{ return {expression}; }}")
        program = parse_program(source)
        rendered = unparse_expression(
            program.functions[0].body.statements[0].value)
        reprogram = parse_program(
            f"int f(int a, int b, int c) {{ return {rendered}; }}")

        def outcome(target, args):
            try:
                return ("v", Interpreter(target).run("f", list(args)))
            except Exception as error:  # noqa: BLE001
                return ("e", type(error).__name__)

        for args in [(1, 2, 3), (-5, 4, 0), (0, 0, 0), (9, -9, 2)]:
            assert outcome(program, args) == outcome(reprogram, args)

    @given(st.sampled_from(list(range(10))))
    @settings(max_examples=10, deadline=None)
    def test_yolo_roundtrip_statement_counts(self, index):
        from repro.dnn.minic_yolo import YOLO_FILES
        from repro.lang.minic import parse_program, unparse_program
        filename = sorted(YOLO_FILES)[index]
        original = parse_program(YOLO_FILES[filename])
        reparsed = parse_program(unparse_program(original))
        assert reparsed.statement_count == original.statement_count
        assert reparsed.decision_count == original.decision_count


class TestSingleExitProperties:
    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
                    min_size=1, max_size=5),
           st.lists(st.integers(-100, 100), min_size=4, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_transform_preserves_behaviour(self, guards, probes):
        from repro.lang.minic import (Interpreter, parse_program,
                                      to_single_exit)
        body = []
        for threshold, value in guards:
            body.append(f"if (x > {threshold}) {{ return {value}; }}")
            body.append(f"x = x + {abs(value) % 7 + 1};")
        body.append("return x;")
        source = f"int f(int x) {{ {' '.join(body)} }}"
        program = parse_program(source)
        text, report = to_single_exit(program)
        assert report.transformed == ["f"]
        rewritten = parse_program(text)
        assert text.count("return") == 1
        for probe in probes:
            assert Interpreter(program).run("f", [probe]) == \
                Interpreter(rewritten).run("f", [probe])
