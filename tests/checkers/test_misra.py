"""Tests for the MISRA language-subset checker."""

from repro.checkers.misra import MisraChecker, cuda_intrinsic_violations
from repro.lang import parse_translation_unit


def check(source, filename="test.cc"):
    unit = parse_translation_unit(source, filename)
    return MisraChecker().check_project([unit])


def rules_of(report):
    return {finding.rule for finding in report.findings}


class TestBannedConstructs:
    def test_goto_flagged(self):
        report = check("void f() { goto end; end: return; }")
        assert "M15.1" in rules_of(report)

    def test_multiple_exits_flagged(self):
        report = check("int f(int x) { if (x) return 1; return 0; }")
        assert "M15.5" in rules_of(report)

    def test_single_exit_clean(self):
        report = check("int f(int x) { int r = x; return r; }")
        assert "M15.5" not in rules_of(report)

    def test_malloc_flagged(self):
        report = check("void f() { void* p = malloc(8); free(p); }")
        assert "M21.3" in rules_of(report)
        assert "D4.12" in rules_of(report)

    def test_new_flagged_as_dynamic(self):
        report = check("void f() { int* p = new int; delete p; }")
        assert "D4.12" in rules_of(report)

    def test_setjmp_flagged(self):
        report = check("void f() { setjmp(env); }")
        assert "M21.4" in rules_of(report)

    def test_printf_flagged(self):
        report = check('void f() { printf("x"); }')
        assert "M21.6" in rules_of(report)

    def test_atoi_flagged(self):
        report = check('void f(char* s) { int x = atoi(s); }')
        assert "M21.7" in rules_of(report)

    def test_exit_flagged(self):
        report = check("void f() { exit(1); }")
        assert "M21.8" in rules_of(report)

    def test_banned_header(self):
        report = check("#include <stdio.h>\nvoid f() { }")
        assert "M21.6" in rules_of(report)

    def test_octal_constant(self):
        report = check("void f() { int x = 0755; }")
        assert "M7.1" in rules_of(report)

    def test_zero_is_not_octal(self):
        report = check("void f() { int x = 0; }")
        assert "M7.1" not in rules_of(report)

    def test_hex_is_not_octal(self):
        report = check("void f() { int x = 0x12; }")
        assert "M7.1" not in rules_of(report)

    def test_union_flagged(self):
        report = check("union U { int i; float f; };")
        assert "M19.2" in rules_of(report)

    def test_direct_recursion(self):
        report = check("int f(int n) { if (n) { return f(n - 1); } "
                       "return 0; }")
        assert "M17.2" in rules_of(report)

    def test_unused_parameter(self):
        report = check("int f(int used, int unused) { return used; }")
        findings = [finding for finding in report.findings
                    if finding.rule == "M2.7"]
        assert len(findings) == 1
        assert "unused" in findings[0].message


class TestCompoundBodies:
    def test_braceless_if_flagged(self):
        report = check("void f(int x) { if (x) x++; }")
        assert "M15.6" in rules_of(report)

    def test_braced_if_clean(self):
        report = check("void f(int x) { if (x) { x++; } }")
        assert "M15.6" not in rules_of(report)

    def test_else_if_chain_allowed(self):
        report = check(
            "void f(int x) { if (x) { } else if (x > 1) { } else { } }")
        assert "M15.6" not in rules_of(report)

    def test_braceless_for_flagged(self):
        report = check("void f() { for (int i = 0; i < 3; i++) g(i); }")
        assert "M15.6" in rules_of(report)

    def test_braceless_else_flagged(self):
        report = check("void f(int x) { if (x) { } else x++; }")
        assert "M15.6" in rules_of(report)


class TestSwitchRules:
    def test_missing_default(self):
        report = check(
            "void f(int x) { switch (x) { case 1: break; } }")
        assert "M16.4" in rules_of(report)

    def test_default_present_clean(self):
        report = check(
            "void f(int x) { switch (x) { case 1: break; "
            "default: break; } }")
        assert "M16.4" not in rules_of(report)

    def test_fallthrough_flagged(self):
        report = check(
            "void f(int x) { switch (x) { case 1: x++; case 2: break; "
            "default: break; } }")
        assert "M16.3" in rules_of(report)

    def test_empty_shared_labels_allowed(self):
        report = check(
            "void f(int x) { switch (x) { case 1: case 2: x++; break; "
            "default: break; } }")
        assert "M16.3" not in rules_of(report)

    def test_return_terminates_clause(self):
        report = check(
            "int f(int x) { switch (x) { case 1: return 1; "
            "default: return 0; } }")
        assert "M16.3" not in rules_of(report)


class TestGpuStatistics:
    CUDA = """
    __global__ void k(float *out, float *in, int n) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      if (i < n) {
        out[i] = in[i];
      }
    }
    void launch(float *out, float *in, int n) {
      float *d;
      cudaMalloc((void**)&d, n);
      k<<<1, 32>>>(out, in, n);
      cudaFree(d);
    }
    """

    def test_gpu_function_counting(self):
        report = check(self.CUDA, "k.cu")
        assert report.stats["gpu_functions"] == 1
        assert report.stats["gpu_functions_with_pointers"] == 1

    def test_cuda_intrinsic_summary(self):
        report = check(self.CUDA, "k.cu")
        summary = cuda_intrinsic_violations(report)
        assert summary["pointer_ratio"] == 1.0

    def test_violations_per_kloc_computed(self):
        report = check("#include <stdio.h>\nvoid f() { }\n")
        assert report.stats["violations_per_kloc"] > 0
        assert report.stats["misra_clean"] == 0.0

    def test_clean_file(self):
        report = check("int f(int x) { int r = x + 1; return r; }")
        assert report.stats["misra_violations"] == 0
        assert report.stats["misra_clean"] == 1.0
