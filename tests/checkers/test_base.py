"""Tests for the checker framework itself."""

import pytest

from repro.checkers import (
    CastChecker,
    Checker,
    CheckerReport,
    Finding,
    GlobalVariableChecker,
    Severity,
    enclosing_function_name,
    run_checkers,
)
from repro.lang import parse_translation_unit


class TestFinding:
    def test_located_with_line(self):
        finding = Finding(rule="R1", message="msg", filename="a.cc",
                          line=12)
        assert finding.located() == "a.cc:12: [R1] msg"

    def test_located_file_level(self):
        finding = Finding(rule="R1", message="msg", filename="a.cc")
        assert finding.located() == "a.cc: [R1] msg"

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.MINOR < Severity.MAJOR \
            < Severity.CRITICAL


class TestCheckerReport:
    def test_count_by_rule(self):
        report = CheckerReport(checker="x")
        report.findings = [
            Finding(rule="A", message="", filename="f"),
            Finding(rule="A", message="", filename="f"),
            Finding(rule="B", message="", filename="f"),
        ]
        assert report.count_by_rule() == {"A": 2, "B": 1}

    def test_merge_sums_stats(self):
        first = CheckerReport(checker="x", stats={"n": 1})
        second = CheckerReport(checker="x", stats={"n": 2, "m": 5})
        first.merge(second)
        assert first.stats == {"n": 3, "m": 5}

    def test_merge_rejects_mismatched_checker(self):
        first = CheckerReport(checker="x")
        second = CheckerReport(checker="y")
        with pytest.raises(ValueError):
            first.merge(second)

    def test_ratio_helper(self):
        assert Checker.ratio(1, 4) == 0.25
        assert Checker.ratio(1, 0) == 0.0


class TestRunCheckers:
    def test_runs_all_and_keys_by_name(self):
        unit = parse_translation_unit(
            "int g_x = 0;\nvoid f(float v) { int y = (int)v; }", "a.cc")
        reports = run_checkers([CastChecker(), GlobalVariableChecker()],
                               [unit])
        assert set(reports) == {"casts", "globals"}
        assert reports["casts"].stats["explicit_casts"] == 1
        assert reports["globals"].stats["mutable_globals"] == 1


class TestEnclosingFunction:
    SOURCE = """
void outer() {
  int a = 1;
}
void second() {
  int b = 2;
}
"""

    def test_line_inside_function(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        assert enclosing_function_name(unit, 3) == "outer"
        assert enclosing_function_name(unit, 6) == "second"

    def test_line_outside_functions(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        assert enclosing_function_name(unit, 100) == ""

    def test_innermost_wins(self):
        source = ("class C {\n public:\n  void method() {\n"
                  "    int x = 1;\n  }\n};")
        unit = parse_translation_unit(source, "a.cc")
        assert enclosing_function_name(unit, 4) == "C::method"
