"""Tests for the checker framework itself."""

import pytest

from repro.checkers import (
    CastChecker,
    Checker,
    CheckerReport,
    Finding,
    GlobalVariableChecker,
    Severity,
    enclosing_function_name,
    run_checkers,
)
from repro.lang import parse_translation_unit


class TestFinding:
    def test_located_with_line(self):
        finding = Finding(rule="R1", message="msg", filename="a.cc",
                          line=12)
        assert finding.located() == "a.cc:12: [R1] msg"

    def test_located_file_level(self):
        finding = Finding(rule="R1", message="msg", filename="a.cc")
        assert finding.located() == "a.cc: [R1] msg"

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.MINOR < Severity.MAJOR \
            < Severity.CRITICAL


class TestCheckerReport:
    def test_count_by_rule(self):
        report = CheckerReport(checker="x")
        report.findings = [
            Finding(rule="A", message="", filename="f"),
            Finding(rule="A", message="", filename="f"),
            Finding(rule="B", message="", filename="f"),
        ]
        assert report.count_by_rule() == {"A": 2, "B": 1}

    def test_merge_sums_stats(self):
        first = CheckerReport(checker="x", stats={"n": 1})
        second = CheckerReport(checker="x", stats={"n": 2, "m": 5})
        first.merge(second)
        assert first.stats == {"n": 3, "m": 5}

    def test_merge_rejects_mismatched_checker(self):
        first = CheckerReport(checker="x")
        second = CheckerReport(checker="y")
        with pytest.raises(ValueError):
            first.merge(second)

    def test_ratio_helper(self):
        assert Checker.ratio(1, 4) == 0.25
        assert Checker.ratio(1, 0) == 0.0


class TestRunCheckers:
    def test_runs_all_and_keys_by_name(self):
        unit = parse_translation_unit(
            "int g_x = 0;\nvoid f(float v) { int y = (int)v; }", "a.cc")
        reports = run_checkers([CastChecker(), GlobalVariableChecker()],
                               [unit])
        assert set(reports) == {"casts", "globals"}
        assert reports["casts"].stats["explicit_casts"] == 1
        assert reports["globals"].stats["mutable_globals"] == 1

    def test_duplicate_checker_name_raises(self):
        # Regression: two checkers sharing a name used to silently
        # overwrite each other's report.
        unit = parse_translation_unit("int x;\n", "a.cc")
        with pytest.raises(ValueError, match="duplicate checker name"):
            run_checkers([CastChecker(), CastChecker()], [unit])

    def test_traced_run_records_checker_spans(self):
        from repro.obs import Tracer
        unit = parse_translation_unit(
            "void f(float v) { int y = (int)v; }", "a.cc")
        tracer = Tracer()
        run_checkers([CastChecker()], [unit], tracer=tracer)
        spans = tracer.find("checker")
        assert [span.attributes["name"] for span in spans] == ["casts"]
        assert spans[0].attributes["findings"] >= 1
        assert tracer.metrics.counter_value(
            "checker.findings", checker="casts") >= 1


class _CountingChecker(Checker):
    """Per-unit counts plus a finalize-derived ratio, for merge tests."""

    name = "counting"

    def check_unit(self, unit):
        report = CheckerReport(checker=self.name)
        report.stats["functions"] = len(unit.functions)
        report.stats["flagged"] = sum(
            1 for function in unit.functions
            if function.qualified_name.startswith("bad"))
        return report

    def finalize(self, report):
        report.stats["flagged_ratio"] = self.ratio(
            report.stats.get("flagged", 0),
            report.stats.get("functions", 0))


class TestMergeFinalize:
    UNIT_A = "void bad_one() {}\nvoid good_one() {}\n"
    UNIT_B = "void bad_two() {}\nvoid good_two() {}\nvoid good_three() {}\n"

    def test_check_project_recomputes_ratio_from_summed_counts(self):
        units = [parse_translation_unit(self.UNIT_A, "a.cc"),
                 parse_translation_unit(self.UNIT_B, "b.cc")]
        report = _CountingChecker().check_project(units)
        assert report.stats["functions"] == 5
        assert report.stats["flagged"] == 2
        assert report.stats["flagged_ratio"] == pytest.approx(2 / 5)

    def test_merging_finalized_reports_then_refinalizing(self):
        # Merging two already-finalized reports sums the ratio stats too;
        # finalize must overwrite (not accumulate) the derived ratio so
        # nothing is double-counted.
        checker = _CountingChecker()
        first = checker.check_project(
            [parse_translation_unit(self.UNIT_A, "a.cc")])
        second = checker.check_project(
            [parse_translation_unit(self.UNIT_B, "b.cc")])
        assert first.stats["flagged_ratio"] == pytest.approx(1 / 2)
        assert second.stats["flagged_ratio"] == pytest.approx(1 / 3)
        first.merge(second)
        checker.finalize(first)
        assert first.stats["functions"] == 5
        assert first.stats["flagged"] == 2
        assert first.stats["flagged_ratio"] == pytest.approx(2 / 5)

    def test_merge_preserves_findings_order(self):
        first = CheckerReport(checker="x", findings=[
            Finding(rule="A", message="", filename="a.cc")])
        second = CheckerReport(checker="x", findings=[
            Finding(rule="B", message="", filename="b.cc")])
        first.merge(second)
        assert [finding.rule for finding in first.findings] == ["A", "B"]


class TestEnclosingFunction:
    SOURCE = """
void outer() {
  int a = 1;
}
void second() {
  int b = 2;
}
"""

    def test_line_inside_function(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        assert enclosing_function_name(unit, 3) == "outer"
        assert enclosing_function_name(unit, 6) == "second"

    def test_line_outside_functions(self):
        unit = parse_translation_unit(self.SOURCE, "a.cc")
        assert enclosing_function_name(unit, 100) == ""

    def test_innermost_wins(self):
        source = ("class C {\n public:\n  void method() {\n"
                  "    int x = 1;\n  }\n};")
        unit = parse_translation_unit(source, "a.cc")
        assert enclosing_function_name(unit, 4) == "C::method"
