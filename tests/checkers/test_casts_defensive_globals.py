"""Tests for the cast, defensive-programming, and globals checkers."""

from repro.checkers import CastChecker, DefensiveChecker, \
    GlobalVariableChecker
from repro.checkers.defensive import project_validation_ratio
from repro.lang import parse_translation_unit


def unit_of(source, filename="t.cc"):
    return parse_translation_unit(source, filename)


class TestCastChecker:
    def check(self, source):
        return CastChecker().check_project([unit_of(source)])

    def test_named_casts_counted(self):
        report = self.check(
            "void f(float x) {\n"
            "  int a = static_cast<int>(x);\n"
            "  const int* p = &a;\n"
            "  int* q = const_cast<int*>(p);\n"
            "}")
        assert report.stats["named_casts"] == 2

    def test_c_style_cast_detected(self):
        report = self.check("void f(float x) { int a = (int)x; }")
        assert report.stats["c_style_casts"] == 1

    def test_c_style_pointer_cast_detected(self):
        report = self.check(
            "void f(void* p) { float* q = (float*)p; }")
        assert report.stats["c_style_casts"] == 1

    def test_call_not_mistaken_for_cast(self):
        report = self.check("void f() { g(x); h(1); }")
        assert report.stats["c_style_casts"] == 0

    def test_parenthesized_expression_not_cast(self):
        report = self.check("int f(int a, int b) { return (a) + (b); }")
        assert report.stats["c_style_casts"] == 0

    def test_declaration_not_functional_cast(self):
        report = self.check("void f() { int (x) = 3; }")
        assert report.stats["functional_casts"] == 0

    def test_functional_cast_in_expression(self):
        report = self.check("void f(float x) { int y = 1 + int(x); }")
        assert report.stats["functional_casts"] == 1

    def test_fixed_width_cast(self):
        report = self.check(
            "void f(float x) { uint32_t v = (uint32_t)x; }")
        assert report.stats["c_style_casts"] == 1

    def test_narrowing_initialization(self):
        report = self.check("void f() { int x = 2.5; }")
        assert report.stats["implicit_narrowing_risks"] == 1

    def test_integer_initialization_clean(self):
        report = self.check("void f() { int x = 2; }")
        assert report.stats["implicit_narrowing_risks"] == 0

    def test_explicit_total(self):
        report = self.check(
            "void f(float x) { int a = (int)x; "
            "int b = static_cast<int>(x); }")
        assert report.stats["explicit_casts"] == 2


class TestDefensiveChecker:
    def check(self, source):
        return DefensiveChecker().check_project([unit_of(source)])

    def test_validated_parameters(self):
        report = self.check(
            "int f(int* p) { if (p == 0) { return -1; } return p[0]; }")
        assert report.stats["guarded_functions"] == 1
        assert report.stats["validation_ratio"] == 1.0

    def test_check_macro_counts_as_validation(self):
        report = self.check(
            "int f(int* p) { CHECK_NOTNULL(p); return p[0]; }")
        assert report.stats["guarded_functions"] == 1

    def test_unvalidated_parameters(self):
        report = self.check("int f(int* p) { return p[0] + p[1]; }")
        assert report.stats["guarded_functions"] == 0
        assert any(finding.rule == "DF.unvalidated_params"
                   for finding in report.findings)

    def test_validation_must_mention_parameter(self):
        report = self.check(
            "int f(int* p) { int local = 3; if (local > 0) { } "
            "return p[0]; }")
        assert report.stats["guarded_functions"] == 0

    def test_parameterless_function_not_guardable(self):
        report = self.check("int f() { return 1; }")
        assert report.stats["guardable_functions"] == 0

    def test_unchecked_return_value(self):
        report = self.check(
            "int status(int x) { if (x) { return 1; } return 0; }\n"
            "void caller(int x) { status(x); }")
        assert report.stats["unchecked_return_calls"] == 1

    def test_checked_return_value_clean(self):
        report = self.check(
            "int status(int x) { if (x) { return 1; } return 0; }\n"
            "void caller(int x) { int r = status(x); }")
        assert report.stats["unchecked_return_calls"] == 0

    def test_project_ratio_helper(self):
        reports = [self.check("int f(int* p) { if (p == 0) { return 0; } "
                              "return 1; }"),
                   self.check("int g(int* p) { return p[0]; }")]
        assert project_validation_ratio(reports) == 0.5


class TestGlobalVariableChecker:
    def check(self, source):
        return GlobalVariableChecker().check_project([unit_of(source)])

    def test_mutable_global_flagged(self):
        report = self.check("int g_count = 0;")
        assert report.stats["mutable_globals"] == 1
        assert report.findings[0].rule == "GV.mutable_global"

    def test_const_global_not_flagged(self):
        report = self.check("const int kLimit = 10;")
        assert report.stats["mutable_globals"] == 0
        assert report.stats["const_globals"] == 1

    def test_constexpr_not_flagged(self):
        report = self.check("constexpr float kPi = 3.14f;")
        assert report.stats["mutable_globals"] == 0

    def test_namespace_globals_counted(self):
        report = self.check(
            "namespace a { int g_x = 0; namespace b { int g_y = 1; } }")
        assert report.stats["mutable_globals"] == 2

    def test_extern_and_static_classification(self):
        report = self.check("extern int g_a;\nstatic int g_b = 2;")
        assert report.stats["extern_globals"] == 1
        assert report.stats["static_globals"] == 1
