"""Tests for the Brook Auto-style GPU-safe-subset checker."""

from repro.checkers import GpuSubsetChecker
from repro.gpu.kernels import ALL_KERNELS_SOURCE
from repro.lang import parse_translation_unit
from repro.lang.minic import parse_program


def strict_check(source):
    return GpuSubsetChecker().check_program(parse_program(source), "k.cu")


def fuzzy_check(source):
    unit = parse_translation_unit(source, "k.cu")
    return GpuSubsetChecker().check_unit(unit)


def rules_of(report):
    return {finding.rule for finding in report.findings}


GOOD_KERNEL = """
__global__ void scale(float *out, float *in, float factor, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * factor;
  }
}
"""


class TestStrictFrontEnd:
    def test_compliant_kernel(self):
        report = strict_check(GOOD_KERNEL)
        assert report.stats["kernels_checked"] == 1
        assert report.stats["subset_compliant_kernels"] == 1
        assert report.stats["guarded_kernels"] == 1

    def test_stream_rewrite_count(self):
        report = strict_check(GOOD_KERNEL)
        # Two buffer parameters -> two stream rewrites for Brook Auto.
        assert report.stats["stream_rewrites_needed"] == 2

    def test_missing_range_guard_flagged(self):
        source = """
        __global__ void unguarded(float *out, int n) {
          int i = threadIdx.x;
          out[i] = 1.0f;
        }
        """
        report = strict_check(source)
        assert "GS3" in rules_of(report)
        assert report.stats["subset_compliant_kernels"] == 0

    def test_pointer_arithmetic_flagged(self):
        source = """
        __global__ void shifty(float *out, int n) {
          int i = threadIdx.x;
          if (i < n) {
            (out + i)[0] = 1.0f;
          }
        }
        """
        report = strict_check(source)
        assert "GS2" in rules_of(report)

    def test_subscripting_is_allowed(self):
        report = strict_check(GOOD_KERNEL)
        assert "GS2" not in rules_of(report)

    def test_unbounded_loop_flagged(self):
        source = """
        __global__ void spin(float *out, int n) {
          int i = threadIdx.x;
          if (i < n) {
            while (1) {
              out[i] = 0.0f;
              break;
            }
          }
        }
        """
        report = strict_check(source)
        assert "GS6" in rules_of(report)

    def test_bounded_loop_allowed(self):
        source = """
        __global__ void reduce(float *out, float *in, int n) {
          int i = threadIdx.x;
          if (i < n) {
            float s = 0.0f;
            for (int k = 0; k < n; k++) {
              s += in[k];
            }
            out[i] = s;
          }
        }
        """
        report = strict_check(source)
        assert "GS6" not in rules_of(report)

    def test_device_recursion_flagged(self):
        source = """
        __device__ int walk(int depth) {
          if (depth <= 0) {
            return 0;
          }
          return walk(depth - 1);
        }
        __global__ void driver(float *out, int n) {
          int i = threadIdx.x;
          if (i < n) {
            out[i] = walk(i);
          }
        }
        """
        report = strict_check(source)
        assert "GS5" in rules_of(report)

    def test_all_shipped_kernels_are_subset_compliant(self):
        """The reproduction's own kernels obey the GPU-safe subset."""
        report = strict_check(ALL_KERNELS_SOURCE)
        assert report.stats["kernels_checked"] == 9
        assert report.stats["subset_compliant_kernels"] == 9


class TestFuzzyFrontEnd:
    def test_corpus_kernel_clean(self):
        source = """
        __global__ void scale(float *out, float *in, float f, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) {
            out[i] = in[i] * f;
          }
        }
        """
        report = fuzzy_check(source)
        assert report.stats["kernels_checked"] == 1
        assert report.stats["subset_compliant_kernels"] == 1

    def test_dynamic_memory_in_kernel_flagged(self):
        source = """
        __global__ void alloc(float *out, int n) {
          float* scratch = (float*)malloc(n * 4);
          out[0] = scratch[0];
          free(scratch);
        }
        """
        report = fuzzy_check(source)
        assert "GS4" in rules_of(report)

    def test_recursive_kernel_flagged(self):
        source = """
        __global__ void recur(float *out, int n) {
          if (n > 0) {
            recur(out, n - 1);
          }
        }
        """
        report = fuzzy_check(source)
        assert "GS5" in rules_of(report)

    def test_host_functions_ignored(self):
        source = "void host_only() { float* p = new float[4]; delete[] p; }"
        report = fuzzy_check(source)
        assert report.stats["kernels_checked"] == 0
        assert report.findings == []

    def test_corpus_cuda_units(self, small_corpus):
        """Corpus kernels pass the fuzzy subset audit (they follow the
        Figure 4 idiom, whose dynamic memory lives in host wrappers)."""
        checker = GpuSubsetChecker()
        for record in small_corpus.files:
            if not record.path.endswith(".cu"):
                continue
            unit = parse_translation_unit(record.source, record.path)
            report = checker.check_unit(unit)
            assert report.stats["kernels_checked"] > 0
            assert report.stats["subset_compliant_kernels"] == \
                report.stats["kernels_checked"]
