"""Tests for the unit-design and architecture checkers."""

from repro.checkers import (
    ArchitectureChecker,
    ArchitectureConfig,
    UnitDesignChecker,
    module_from_path,
)
from repro.lang import parse_translation_unit


def units_of(sources):
    return [parse_translation_unit(text, path)
            for path, text in sources.items()]


def ud_check(source, filename="t.cc"):
    return UnitDesignChecker().check_project(
        [parse_translation_unit(source, filename)])


def rules_of(report):
    return {finding.rule for finding in report.findings}


class TestUnitDesign:
    def test_multi_exit_detection(self):
        report = ud_check(
            "int f(int x) { if (x) { return 1; } return 0; }")
        assert report.stats["multi_exit_functions"] == 1
        assert report.stats["multi_exit_ratio"] == 1.0

    def test_single_exit_clean(self):
        report = ud_check("int f(int x) { int y = x; return y; }")
        assert report.stats["multi_exit_functions"] == 0

    def test_dynamic_allocation(self):
        report = ud_check("void f(int n) { float* p = new float[n]; }")
        assert report.stats["dynamic_alloc_functions"] == 1

    def test_uninitialized_local(self):
        report = ud_check("void f() { int x; x = 3; }")
        assert report.stats["uninitialized_declarations"] == 1

    def test_initialized_local_clean(self):
        report = ud_check("void f() { int x = 0; }")
        assert report.stats["uninitialized_declarations"] == 0

    def test_shadowing_detection(self):
        report = ud_check(
            "void f(int x) { if (x) { int x = 2; } }")
        assert report.stats["shadowed_names"] == 1

    def test_shadowing_of_sibling_scope_not_flagged(self):
        report = ud_check(
            "void f(int c) { if (c) { int y = 1; } "
            "if (c) { float z = 2.0f; } }")
        assert report.stats["shadowed_names"] == 0

    def test_goto_counted(self):
        report = ud_check("void f() { goto x; x: return; }")
        assert report.stats["goto_functions"] == 1
        assert "UD9.goto" in rules_of(report)

    def test_pointer_functions(self):
        report = ud_check("void f(float* p) { }\nvoid g(int x) { }")
        assert report.stats["pointer_functions"] == 1
        assert report.stats["pointer_ratio"] == 0.5

    def test_hidden_flow_macro(self):
        report = ud_check(
            "#define CHECK_IT(x) if (!(x)) return\n"
            "void f(int v) { CHECK_IT(v); }")
        assert report.stats["hidden_flow_sites"] >= 1
        assert "UD8.macro_flow" in rules_of(report)

    def test_conditional_compilation_hidden_flow(self):
        report = ud_check(
            "#ifdef GPU\nvoid f() { }\n#else\nvoid f() { }\n#endif")
        assert "UD8.cond_compilation" in rules_of(report)

    def test_direct_recursion_detected(self):
        report = ud_check(
            "int f(int n) { if (n) { return f(n - 1); } return 0; }")
        assert report.stats["recursive_functions"] == 1

    def test_indirect_recursion_detected(self):
        report = ud_check(
            "int a(int n) { return b(n); }\n"
            "int b(int n) { if (n) { return a(n - 1); } return 0; }")
        assert report.stats["recursive_functions"] == 2

    def test_acyclic_calls_not_recursive(self):
        report = ud_check(
            "int leaf(int n) { return n; }\n"
            "int mid(int n) { return leaf(n); }\n"
            "int top(int n) { return mid(n); }")
        assert report.stats["recursive_functions"] == 0

    def test_cross_file_recursion(self):
        units = units_of({
            "a.cc": "int ping(int n) { return pong(n); }",
            "b.cc": "int pong(int n) { if (n) { return ping(n - 1); } "
                    "return 0; }",
        })
        report = UnitDesignChecker().check_project(units)
        assert report.stats["recursive_functions"] == 2


class TestArchitecture:
    def make_sources(self):
        return {
            "alpha/core/a.cc": (
                '#include "beta/api.h"\n'
                "void AlphaWork() { BetaApi(); }\n"),
            "beta/api.cc": (
                "void BetaApi() { BetaHelper(); }\n"
                "void BetaHelper() { }\n"),
        }

    def test_module_from_path(self):
        assert module_from_path("perception/camera/x.cc") == "perception"
        assert module_from_path("file.cc") == "<root>"

    def test_module_grouping_and_hierarchy(self):
        report = ArchitectureChecker().check_project(
            units_of(self.make_sources()))
        assert report.stats["modules"] == 2
        assert report.stats["hierarchy_depth"] == 2

    def test_component_size_violation(self):
        config = ArchitectureConfig(max_component_loc=1)
        report = ArchitectureChecker(config).check_project(
            units_of(self.make_sources()))
        assert report.stats["oversized_components"] == 2

    def test_interface_size_violation(self):
        source = ("class Fat {\n public:\n"
                  + "".join(f"  void m{i}();\n" for i in range(25))
                  + "};")
        config = ArchitectureConfig(max_interface_methods=20)
        report = ArchitectureChecker(config).check_project(
            units_of({"m/a.cc": source}))
        assert report.stats["oversized_interfaces"] == 1

    def test_cohesion_intra_module(self):
        sources = {
            "one/a.cc": "void A() { B(); }\nvoid B() { }\n",
        }
        report = ArchitectureChecker().check_project(units_of(sources))
        assert report.stats["mean_cohesion"] == 1.0

    def test_coupling_fanout(self):
        sources = {
            "one/a.cc": ('#include "two/x.h"\n#include "three/y.h"\n'
                         "void A() { }\n"),
            "two/x.cc": "void X() { }\n",
            "three/y.cc": "void Y() { }\n",
        }
        report = ArchitectureChecker().check_project(units_of(sources))
        assert report.stats["max_module_fanout"] == 2

    def test_scheduling_sites(self):
        sources = {"m/a.cc": "void Run() { pthread_create(t, 0, w, 0); }\n"}
        report = ArchitectureChecker().check_project(units_of(sources))
        assert report.stats["scheduling_sites"] == 1

    def test_interrupt_sites(self):
        sources = {"m/a.cc": "void Install() { signal(2, handler); }\n"}
        report = ArchitectureChecker().check_project(units_of(sources))
        assert report.stats["interrupt_sites"] == 1

    def test_clean_architecture(self):
        sources = {"m/a.cc": "void Quiet() { }\n"}
        report = ArchitectureChecker().check_project(units_of(sources))
        assert report.stats["scheduling_sites"] == 0
        assert report.stats["interrupt_sites"] == 0
