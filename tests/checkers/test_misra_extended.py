"""Tests for the extended MISRA rules (M8.2, M12.3, M13.4)."""

from repro.checkers.misra import MisraChecker
from repro.lang import parse_translation_unit


def check(source, filename="test.cc"):
    unit = parse_translation_unit(source, filename)
    return MisraChecker().check_project([unit])


def rules_of(report):
    return {finding.rule for finding in report.findings}


class TestUnnamedParameters:
    def test_unnamed_parameter_flagged(self):
        report = check("void f(int, float named) { named += 1.0f; }")
        assert "M8.2" in rules_of(report)

    def test_named_parameters_clean(self):
        report = check("void f(int a, float b) { b += a; }")
        assert "M8.2" not in rules_of(report)

    def test_void_list_not_flagged(self):
        report = check("void f(void) { }")
        assert "M8.2" not in rules_of(report)


class TestAssignmentInCondition:
    def test_if_assignment_flagged(self):
        report = check("void f(int x, int y) { if (x = y) { x++; } }")
        assert "M13.4" in rules_of(report)

    def test_while_assignment_flagged(self):
        report = check(
            "void f(int x, int y) { while (x = next(y)) { use(x); } }")
        assert "M13.4" in rules_of(report)

    def test_comparison_clean(self):
        report = check("void f(int x, int y) { if (x == y) { x++; } }")
        assert "M13.4" not in rules_of(report)

    def test_compound_comparison_clean(self):
        report = check(
            "void f(int x, int y) { if (x <= y && x >= 0) { x++; } }")
        assert "M13.4" not in rules_of(report)

    def test_assignment_in_body_clean(self):
        report = check("void f(int x, int y) { if (x > y) { x = y; } }")
        assert "M13.4" not in rules_of(report)


class TestCommaInForIncrement:
    def test_comma_increment_flagged(self):
        report = check(
            "void f(int n) { for (int i = 0, j = 0; i < n; i++, j++) "
            "{ use(i, j); } }")
        assert "M12.3" in rules_of(report)

    def test_plain_for_clean(self):
        report = check(
            "void f(int n) { for (int i = 0; i < n; i++) { use(i); } }")
        assert "M12.3" not in rules_of(report)

    def test_call_in_condition_not_confused(self):
        report = check(
            "void f(int n) { for (int i = 0; valid(i, n); i++) "
            "{ use(i); } }")
        assert "M12.3" not in rules_of(report)
