"""Tests for the style and naming checkers."""

from repro.checkers import NamingChecker, StyleChecker, StyleConfig
from repro.lang import parse_translation_unit


def style_check(source, filename="t.cc", config=StyleConfig()):
    checker = StyleChecker(config)
    checker.add_source(filename, source)
    return checker.check_unit(parse_translation_unit(source, filename))


def naming_check(source, filename="t.cc"):
    return NamingChecker().check_project(
        [parse_translation_unit(source, filename)])


def rules_of(report):
    return {finding.rule for finding in report.findings}


class TestStyleChecker:
    def test_clean_google_style(self):
        source = ("int Add(int a, int b) {\n"
                  "  return a + b;\n"
                  "}\n")
        report = style_check(source)
        assert report.stats["style_violations"] == 0

    def test_line_length(self):
        source = "int x = 0;  // " + "y" * 80 + "\n"
        report = style_check(source)
        assert "SG.line_length" in rules_of(report)

    def test_custom_line_limit(self):
        source = "int value_with_name = 0;  // comment making it long\n"
        report = style_check(source, config=StyleConfig(max_line_length=20))
        assert "SG.line_length" in rules_of(report)

    def test_tab_flagged(self):
        report = style_check("int x;\n\tint y;\n")
        assert "SG.tab" in rules_of(report)

    def test_trailing_whitespace(self):
        report = style_check("int x;  \n")
        assert "SG.trailing_ws" in rules_of(report)

    def test_brace_on_own_line(self):
        report = style_check("void F()\n{\n}\n")
        assert "SG.brace_own_line" in rules_of(report)

    def test_odd_indent_flagged(self):
        report = style_check("void F() {\n   int x = 0;\n}\n")
        assert "SG.indent" in rules_of(report)

    def test_continuation_alignment_allowed(self):
        source = ("void F(int a,\n"
                  "       int b) {\n"
                  "  int x = a +\n"
                  "          b;\n"
                  "}\n")
        report = style_check(source)
        assert "SG.indent" not in rules_of(report)

    def test_missing_final_newline(self):
        report = style_check("int x;")
        assert "SG.final_newline" in rules_of(report)

    def test_header_guard_required(self):
        report = style_check("int x;\n", filename="a.h")
        assert "SG.header_guard" in rules_of(report)

    def test_pragma_once_accepted(self):
        report = style_check("#pragma once\nint x;\n", filename="a.h")
        assert "SG.header_guard" not in rules_of(report)

    def test_ifndef_guard_accepted(self):
        source = "#ifndef A_H_\n#define A_H_\n#endif\n"
        report = style_check(source, filename="a.h")
        assert "SG.header_guard" not in rules_of(report)

    def test_violations_per_kloc(self):
        report = style_check("int x;\t\n" * 10)
        assert report.stats["violations_per_kloc"] > 0


class TestNamingChecker:
    def test_camel_case_type_accepted(self):
        report = naming_check("class LaneTracker { };")
        assert report.stats["naming_violations"] == 0

    def test_snake_type_rejected(self):
        report = naming_check("class lane_tracker { };")
        assert "NC.type_name" in rules_of(report)

    def test_constant_k_prefix_accepted(self):
        report = naming_check("const float kMaxSpeed = 30.0f;")
        assert report.stats["naming_violations"] == 0

    def test_upper_case_constant_accepted(self):
        report = naming_check("const int MAX_RETRIES = 3;")
        assert report.stats["naming_violations"] == 0

    def test_bad_constant_name(self):
        report = naming_check("const int maxRetries = 3;")
        assert "NC.constant_name" in rules_of(report)

    def test_global_prefix_required(self):
        report = naming_check("int frame_count = 0;")
        assert "NC.global_name" in rules_of(report)

    def test_global_g_prefix_accepted(self):
        report = naming_check("int g_frame_count = 0;")
        assert report.stats["naming_violations"] == 0

    def test_flags_prefix_accepted(self):
        report = naming_check("bool FLAGS_enable_lidar = true;")
        assert report.stats["naming_violations"] == 0

    def test_function_camel_accepted(self):
        report = naming_check("void ComputePath() { }")
        assert report.stats["naming_violations"] == 0

    def test_function_snake_accepted(self):
        report = naming_check("void compute_path() { }")
        assert report.stats["naming_violations"] == 0

    def test_mixed_cpu_styles_flagged(self):
        report = naming_check(
            "void ComputePath() { }\nvoid compute_cost() { }")
        assert "NC.mixed_styles" in rules_of(report)

    def test_kernel_exempt_from_mixing(self):
        report = naming_check(
            "void ComputePath() { }\n"
            "__global__ void scale_bias_kernel(float *p) { }")
        assert "NC.mixed_styles" not in rules_of(report)

    def test_weird_function_name_flagged(self):
        report = naming_check("void Weird_Name() { }")
        assert "NC.function_name" in rules_of(report)

    def test_conformance_ratio(self):
        report = naming_check(
            "class Good { };\nclass bad_one { };")
        assert 0.0 < report.stats["conformance_ratio"] < 1.0
