"""Tests for the CUDA-on-CPU emulation layer."""

import numpy as np
import pytest

from repro.errors import GpuLaunchError, GpuMemoryError
from repro.gpu import CudaRuntime, DeviceMemory, Dim3, grid_for
from repro.gpu.kernels import ALL_KERNELS_SOURCE
from repro.gpu.kernels.linalg import gemm_reference, launch_gemm
from repro.gpu.kernels.stencil import (
    launch_stencil2d,
    launch_stencil3d,
    stencil2d_reference,
    stencil3d_reference,
)
from repro.gpu.kernels.yolo_layers import (
    add_bias_reference,
    im2col_reference,
    launch_add_bias,
    launch_im2col,
    launch_leaky,
    launch_maxpool,
    launch_normalize,
    launch_scale_bias,
    leaky_reference,
    maxpool_reference,
    normalize_reference,
    scale_bias_reference,
)


@pytest.fixture
def runtime():
    return CudaRuntime(ALL_KERNELS_SOURCE)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDim3:
    def test_coercion(self):
        assert Dim3.of(4) == Dim3(4, 1, 1)
        assert Dim3.of((2, 3)) == Dim3(2, 3, 1)
        assert Dim3.of(Dim3(1, 2, 3)) == Dim3(1, 2, 3)

    def test_invalid_values(self):
        with pytest.raises(GpuLaunchError):
            Dim3(0)
        with pytest.raises(GpuLaunchError):
            Dim3.of((1, 2, 3, 4))
        with pytest.raises(GpuLaunchError):
            Dim3.of("big")

    def test_total_and_indices(self):
        dim = Dim3(2, 3, 2)
        assert dim.total == 12
        indices = list(dim.indices())
        assert len(indices) == 12
        assert indices[0] == (0, 0, 0)
        assert indices[1] == (1, 0, 0)  # x fastest
        assert indices[-1] == (1, 2, 1)

    def test_grid_for(self):
        assert grid_for(100, 32) == Dim3(4)
        assert grid_for(96, 32) == Dim3(3)
        with pytest.raises(GpuLaunchError):
            grid_for(0, 32)


class TestDeviceMemory:
    def test_alloc_copy_roundtrip(self):
        memory = DeviceMemory()
        pointer = memory.malloc(4)
        memory.memcpy_htod(pointer, [1.0, 2.0, 3.0, 4.0])
        assert memory.memcpy_dtoh(pointer) == [1.0, 2.0, 3.0, 4.0]

    def test_zero_alloc_rejected(self):
        with pytest.raises(GpuMemoryError):
            DeviceMemory().malloc(0)

    def test_capacity_enforced(self):
        memory = DeviceMemory(capacity_elements=10)
        memory.malloc(8)
        with pytest.raises(GpuMemoryError):
            memory.malloc(8)

    def test_free_releases_capacity(self):
        memory = DeviceMemory(capacity_elements=10)
        pointer = memory.malloc(8)
        memory.free(pointer)
        memory.malloc(8)  # fits again

    def test_double_free_rejected(self):
        memory = DeviceMemory()
        pointer = memory.malloc(4)
        memory.free(pointer)
        with pytest.raises(GpuMemoryError):
            memory.free(pointer)

    def test_use_after_free_rejected(self):
        memory = DeviceMemory()
        pointer = memory.malloc(4)
        memory.free(pointer)
        with pytest.raises(GpuMemoryError):
            memory.memcpy_dtoh(pointer)

    def test_oversized_copy_rejected(self):
        memory = DeviceMemory()
        pointer = memory.malloc(2)
        with pytest.raises(GpuMemoryError):
            memory.memcpy_htod(pointer, [1.0, 2.0, 3.0])

    def test_offset_pointer(self):
        memory = DeviceMemory()
        pointer = memory.malloc(4)
        memory.memcpy_htod(pointer, [1.0, 2.0, 3.0, 4.0])
        shifted = pointer.offset_by(2)
        assert memory.memcpy_dtoh(shifted) == [3.0, 4.0]

    def test_free_of_offset_pointer_rejected(self):
        memory = DeviceMemory()
        pointer = memory.malloc(4)
        with pytest.raises(GpuMemoryError):
            memory.free(pointer.offset_by(1))

    def test_dtod_copy(self):
        memory = DeviceMemory()
        a = memory.malloc(3)
        b = memory.malloc(3)
        memory.memcpy_htod(a, [7.0, 8.0, 9.0])
        memory.memcpy_dtod(b, a)
        assert memory.memcpy_dtoh(b) == [7.0, 8.0, 9.0]

    def test_leak_check(self):
        memory = DeviceMemory()
        memory.malloc(1)
        with pytest.raises(GpuMemoryError):
            memory.check_all_freed()


class TestLaunchValidation:
    def test_unknown_kernel(self, runtime):
        with pytest.raises(GpuLaunchError):
            runtime.launch("nope", 1, 1, [])

    def test_wrong_arity(self, runtime):
        with pytest.raises(GpuLaunchError):
            runtime.launch("stencil2d", 1, 1, [1, 2])

    def test_host_list_rejected_for_pointer_param(self, runtime):
        with pytest.raises(GpuLaunchError):
            runtime.launch("leaky_activate_kernel", 1, 1, [[1.0], 1])

    def test_thread_limit(self, runtime):
        with pytest.raises(GpuLaunchError):
            runtime.launch("leaky_activate_kernel", Dim3(100000),
                           Dim3(1024), [runtime.cuda_malloc(1), 1])

    def test_launch_records(self, runtime):
        pointer = runtime.to_device([1.0, -1.0])
        record = runtime.launch("leaky_activate_kernel", 1, 2, [pointer, 2])
        assert record.thread_count == 2
        assert len(runtime.launches) == 1


class TestKernelsMatchReferences:
    def test_stencil2d(self, runtime, rng):
        grid = rng.normal(size=(9, 11))
        assert np.allclose(launch_stencil2d(runtime, grid, 0.25),
                           stencil2d_reference(grid, 0.25))

    def test_stencil2d_boundary_copied(self, runtime, rng):
        grid = rng.normal(size=(5, 5))
        result = launch_stencil2d(runtime, grid, 0.5)
        assert np.allclose(result[0, :], grid[0, :])
        assert np.allclose(result[:, -1], grid[:, -1])

    def test_stencil3d(self, runtime, rng):
        volume = rng.normal(size=(4, 4, 5))
        assert np.allclose(launch_stencil3d(runtime, volume, 0.1),
                           stencil3d_reference(volume, 0.1))

    def test_gemm(self, runtime, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 3))
        c = rng.normal(size=(4, 3))
        assert np.allclose(launch_gemm(runtime, a, b, c, 2.0, 0.5),
                           gemm_reference(a, b, c, 2.0, 0.5))

    def test_gemm_shape_mismatch(self, runtime, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(6, 3))
        with pytest.raises(ValueError):
            launch_gemm(runtime, a, b, np.zeros((4, 3)))

    def test_scale_bias(self, runtime, rng):
        tensor = rng.normal(size=(2, 3, 2, 2))
        biases = rng.normal(size=3)
        assert np.allclose(launch_scale_bias(runtime, tensor, biases),
                           scale_bias_reference(tensor, biases))

    def test_add_bias(self, runtime, rng):
        tensor = rng.normal(size=(1, 4, 3, 3))
        biases = rng.normal(size=4)
        assert np.allclose(launch_add_bias(runtime, tensor, biases),
                           add_bias_reference(tensor, biases))

    def test_leaky(self, runtime, rng):
        x = rng.normal(size=(4, 7))
        assert np.allclose(launch_leaky(runtime, x), leaky_reference(x))

    def test_normalize(self, runtime, rng):
        x = rng.normal(size=(1, 3, 2, 2))
        mean = rng.normal(size=3)
        variance = rng.uniform(0.5, 2.0, size=3)
        assert np.allclose(launch_normalize(runtime, x, mean, variance),
                           normalize_reference(x, mean, variance))

    def test_maxpool(self, runtime, rng):
        image = rng.normal(size=(2, 6, 6))
        assert np.allclose(launch_maxpool(runtime, image, 2, 2, 0),
                           maxpool_reference(image, 2, 2, 0))

    def test_maxpool_with_padding(self, runtime, rng):
        image = rng.normal(size=(1, 5, 5))
        assert np.allclose(launch_maxpool(runtime, image, 3, 2, 1),
                           maxpool_reference(image, 3, 2, 1))

    def test_im2col(self, runtime, rng):
        image = rng.normal(size=(2, 5, 5))
        assert np.allclose(launch_im2col(runtime, image, 3, 1, 1),
                           im2col_reference(image, 3, 1, 1))

    def test_no_leaks_after_helpers(self, runtime, rng):
        launch_leaky(runtime, rng.normal(size=(2, 2)))
        runtime.memory.check_all_freed()


class TestCoverageIntegration:
    def test_kernel_launch_under_coverage(self):
        """The Figure 6 mechanism: coverage collected from a GPU launch."""
        from repro.coverage import CoverageCollector, summarize_collector
        from repro.lang.minic import parse_program
        program = parse_program(ALL_KERNELS_SOURCE, "kernels.cu")
        collector = CoverageCollector(program)
        runtime = CudaRuntime(program, tracer=collector)
        grid = np.arange(16.0).reshape(4, 4)
        launch_stencil2d(runtime, grid, 0.3)
        coverage = summarize_collector(collector, "kernels.cu",
                                       with_mcdc=False,
                                       exclude_uncalled=True)
        assert 0.0 < coverage.statement_percent <= 100.0
        assert coverage.branch_percent > 0.0
