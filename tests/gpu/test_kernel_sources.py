"""The dual-use property of the kernel sources.

DESIGN.md: "the sources are valid C, so the same strings can be fed to
the fuzzy C++ analyzers (Figure 4's checker findings) and to the MiniC
runtime (Figure 6's coverage measurements)."  These tests pin that
property for every shipped kernel.
"""

import pytest

from repro.gpu.kernels import ALL_KERNELS_SOURCE, SCALE_BIAS_CUDA_EXCERPT
from repro.gpu.kernels import sources
from repro.lang import parse_translation_unit
from repro.lang.minic import parse_program

KERNEL_SOURCES = {
    "stencil2d": sources.STENCIL2D_SOURCE,
    "stencil3d": sources.STENCIL3D_SOURCE,
    "scale_bias": sources.SCALE_BIAS_SOURCE,
    "add_bias": sources.ADD_BIAS_SOURCE,
    "leaky": sources.LEAKY_ACTIVATE_SOURCE,
    "normalize": sources.NORMALIZE_SOURCE,
    "gemm": sources.GEMM_NAIVE_SOURCE,
    "maxpool": sources.MAXPOOL_SOURCE,
    "im2col": sources.IM2COL_SOURCE,
}


class TestDualUse:
    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_parses_as_minic(self, name):
        program = parse_program(KERNEL_SOURCES[name], f"{name}.cu")
        assert len(program.kernels) == 1

    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_parses_as_cpp(self, name):
        unit = parse_translation_unit(KERNEL_SOURCES[name], f"{name}.cu")
        kernels = [function for function in unit.functions
                   if function.is_cuda_kernel]
        assert len(kernels) == 1

    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_both_layers_agree_on_signature(self, name):
        program = parse_program(KERNEL_SOURCES[name], f"{name}.cu")
        unit = parse_translation_unit(KERNEL_SOURCES[name], f"{name}.cu")
        strict = program.kernels[0]
        fuzzy = next(function for function in unit.functions
                     if function.is_cuda_kernel)
        assert strict.name == fuzzy.name
        assert len(strict.parameters) == fuzzy.parameter_count
        strict_pointers = sum(1 for parameter in strict.parameters
                              if parameter.is_pointer)
        fuzzy_pointers = sum(1 for parameter in fuzzy.parameters
                             if parameter.is_pointer)
        assert strict_pointers == fuzzy_pointers

    def test_combined_module(self):
        program = parse_program(ALL_KERNELS_SOURCE, "all.cu")
        assert len(program.kernels) == 9

    def test_excerpt_matches_paper_structure(self):
        """The Figure 4 excerpt: kernel indices, dim3 grid, explicit
        cudaMalloc/Memcpy/Free discipline — as printed in the paper."""
        assert "blockIdx.x * blockDim.x + threadIdx.x" in \
            SCALE_BIAS_CUDA_EXCERPT
        assert "cudaMalloc" in SCALE_BIAS_CUDA_EXCERPT
        assert "cudaMemcpyHostToDevice" in SCALE_BIAS_CUDA_EXCERPT
        assert "cudaMemcpyDeviceToHost" in SCALE_BIAS_CUDA_EXCERPT
        assert "<<<" in SCALE_BIAS_CUDA_EXCERPT
        assert "(size - 1) / BLOCK + 1" in SCALE_BIAS_CUDA_EXCERPT

    @pytest.mark.parametrize("name", sorted(KERNEL_SOURCES))
    def test_kernels_are_misra_dirty_as_the_paper_says(self, name):
        """Observation 4: GPU code intrinsically uses pointers."""
        unit = parse_translation_unit(KERNEL_SOURCES[name], f"{name}.cu")
        kernel = next(function for function in unit.functions
                      if function.is_cuda_kernel)
        assert any(parameter.is_pointer
                   for parameter in kernel.parameters)
