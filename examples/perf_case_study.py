#!/usr/bin/env python3
"""The open- vs closed-source library case study (Figures 7, 8a, 8b).

Prices YOLO-lite's convolution workloads under cuBLAS, cuDNN, CUTLASS,
ISAAC, ATLAS and OpenBLAS, then runs the GEMM and convolution kernel
sweeps — the quantitative backbone of the paper's Observation 12 argument
that open-source libraries are a viable route to certifiable AD stacks.

Usage::

    python examples/perf_case_study.py
"""

from repro.iso26262 import tooling_observations
from repro.perf import (
    compare_conv,
    compare_gemm,
    relative_to_baseline,
    render_case_study,
    render_conv_table,
    render_gemm_table,
    run_case_study,
)


def main() -> None:
    print("Figure 7 — Apollo object detection per implementation")
    results = run_case_study()
    print(render_case_study(results))
    relatives = relative_to_baseline(results)
    cpu_slowdown = min(relatives["ATLAS"], relatives["OpenBLAS"])
    print(f"\nCPU BLAS is >= {cpu_slowdown:.0f}x slower than the GPU "
          f"baseline — the paper's 'two orders of magnitude'.")

    print("\nFigure 8(a) — GEMM kernels, CUTLASS vs cuBLAS")
    print(render_gemm_table(compare_gemm()))

    print("\nFigure 8(b) — convolution kernels, ISAAC vs cuDNN")
    print(render_conv_table(compare_conv()))

    open_vs_closed = relatives["cuDNN"] / relatives["ISAAC"]
    observation = tooling_observations(
        coverage_average=80.0,
        open_vs_closed_relative=open_vs_closed)[2]
    print()
    print(observation.render())


if __name__ == "__main__":
    main()
