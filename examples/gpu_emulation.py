#!/usr/bin/env python3
"""CUDA-on-CPU emulation: the cuda4cpu workflow plus Figure 6.

Demonstrates the GPU substrate end to end:

1. allocate device memory, upload, launch the paper's ``scale_bias``
   kernel, download, and verify against the numpy reference;
2. run the 2D/3D stencil kernels under the coverage engine (Figure 6),
   showing why application-shaped launches cannot reach full coverage;
3. show the runtime enforcing the host/device separation CUDA enforces.

Usage::

    python examples/gpu_emulation.py
"""

import numpy as np

from repro.coverage import CoverageCollector, summarize_collector
from repro.errors import GpuLaunchError
from repro.gpu import CudaRuntime, Dim3
from repro.gpu.kernels import ALL_KERNELS_SOURCE
from repro.gpu.kernels.sources import STENCIL2D_SOURCE
from repro.gpu.kernels.stencil import launch_stencil2d, stencil2d_reference
from repro.gpu.kernels.yolo_layers import launch_scale_bias, \
    scale_bias_reference
from repro.lang.minic import parse_program


def demo_scale_bias() -> None:
    print("=== scale_bias (the paper's Figure 4 kernel) ===")
    runtime = CudaRuntime(ALL_KERNELS_SOURCE)
    rng = np.random.default_rng(0)
    activations = rng.normal(size=(1, 4, 6, 6))  # NCHW feature map
    biases = rng.uniform(0.5, 1.5, size=4)
    result = launch_scale_bias(runtime, activations, biases)
    expected = scale_bias_reference(activations, biases)
    print(f"kernels available: {', '.join(runtime.kernel_names)}")
    print(f"launches executed: {len(runtime.launches)}; "
          f"result matches numpy: {np.allclose(result, expected)}")
    runtime.memory.check_all_freed()
    print("all device allocations freed\n")


def demo_figure6_coverage() -> None:
    print("=== Figure 6: stencil coverage on the CPU ===")
    program = parse_program(STENCIL2D_SOURCE, "stencil2d.cu")
    collector = CoverageCollector(program)
    runtime = CudaRuntime(program, tracer=collector)
    grid = np.random.default_rng(1).normal(size=(16, 16))
    launch_stencil2d(runtime, grid, 0.2)  # exact 8x8 tiling
    coverage = summarize_collector(collector, "stencil2d.cu",
                                   with_mcdc=False)
    print(f"exact-tiling launch: statement "
          f"{coverage.statement_percent:.1f}%  branch "
          f"{coverage.branch_percent:.1f}%")
    for record in coverage.branch.uncovered:
        print(f"  uncovered branch at line {record.line}: "
              f"{record.description}")

    # A ragged launch exercises the range guard both ways.
    collector2 = CoverageCollector(program)
    runtime2 = CudaRuntime(program, tracer=collector2)
    launch_stencil2d(runtime2, grid, 0.2, block=Dim3(5, 5))
    coverage2 = summarize_collector(collector2, "stencil2d.cu",
                                    with_mcdc=False)
    print(f"ragged launch:       statement "
          f"{coverage2.statement_percent:.1f}%  branch "
          f"{coverage2.branch_percent:.1f}%")
    print("correctness preserved:",
          np.allclose(launch_stencil2d(CudaRuntime(STENCIL2D_SOURCE),
                                       grid, 0.2),
                      stencil2d_reference(grid, 0.2)))
    print()


def demo_memory_discipline() -> None:
    print("=== host/device separation ===")
    runtime = CudaRuntime(ALL_KERNELS_SOURCE)
    host_buffer = [1.0, 2.0, 3.0, 4.0]
    try:
        runtime.launch("leaky_activate_kernel", 1, 4, [host_buffer, 4])
    except GpuLaunchError as error:
        print(f"passing host memory to a kernel raises, as it should:\n"
              f"  {error}")
    device = runtime.to_device(host_buffer)
    runtime.launch("leaky_activate_kernel", 1, 4, [device, 4])
    print(f"after device round trip: {runtime.cuda_memcpy_dtoh(device)}")
    runtime.cuda_free(device)


def main() -> None:
    demo_scale_bias()
    demo_figure6_coverage()
    demo_memory_discipline()


if __name__ == "__main__":
    main()
