#!/usr/bin/env python3
"""Migrating GPU code to a certification-friendly subset (Brook Auto).

The paper's Observations 3/4: no language subset exists for GPU code, and
CUDA intrinsically uses pointers and dynamic memory.  Its proposed
direction is Brook Auto — a stream subset that removes those features.
This example runs the reproduction's GPU-safe-subset checker over:

1. the shipped YOLO/stencil kernels (all compliant — they follow the
   guarded-index idiom);
2. deliberately unsafe kernels (pointer arithmetic, unbounded loop,
   missing range guard), showing the findings a migration would fix;
3. the paper's Figure 4 host wrapper, quantifying the stream rewrites a
   Brook Auto port needs.

Usage::

    python examples/gpu_subset_migration.py
"""

from repro.checkers import GpuSubsetChecker, MisraChecker
from repro.gpu.kernels import ALL_KERNELS_SOURCE, SCALE_BIAS_CUDA_EXCERPT
from repro.lang import parse_translation_unit
from repro.lang.minic import parse_program

UNSAFE_KERNELS = """
__global__ void unguarded_write(float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = 1.0f;
}

__global__ void pointer_walk(float *out, float *in, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    (out + i)[0] = (in + i)[0] * 2.0f;
  }
}

__global__ void spin_wait(float *flag, int n) {
  int i = threadIdx.x;
  if (i < n) {
    while (1) {
      if (flag[i] > 0.0f) {
        break;
      }
    }
  }
}
"""


def main() -> None:
    checker = GpuSubsetChecker()

    print("=== shipped kernels (stencils, GEMM, YOLO layers) ===")
    report = checker.check_program(parse_program(ALL_KERNELS_SOURCE),
                                   "kernels.cu")
    print(f"kernels checked: {report.stats['kernels_checked']:.0f}; "
          f"subset-compliant: "
          f"{report.stats['subset_compliant_kernels']:.0f}; "
          f"buffer parameters to lift into streams: "
          f"{report.stats['stream_rewrites_needed']:.0f}")

    print("\n=== deliberately unsafe kernels ===")
    report = checker.check_program(parse_program(UNSAFE_KERNELS),
                                   "unsafe.cu")
    for finding in report.findings:
        print("  " + finding.located())
    print(f"subset-compliant: "
          f"{report.stats['subset_compliant_kernels']:.0f} of "
          f"{report.stats['kernels_checked']:.0f}")

    print("\n=== the paper's Figure 4 unit (kernel + host wrapper) ===")
    unit = parse_translation_unit(SCALE_BIAS_CUDA_EXCERPT, "scale_bias.cu")
    fuzzy = checker.check_unit(unit)
    misra = MisraChecker().check_project([unit])
    wrapper = unit.function("scale_bias_gpu")
    print(f"kernel pointer parameters (stream rewrites): "
          f"{fuzzy.stats['stream_rewrites_needed']:.0f}")
    print(f"host-side cudaMalloc/cudaFree pairs to eliminate: "
          f"{wrapper.allocation_calls:.0f}/"
          f"{wrapper.deallocation_calls:.0f}")
    print(f"MISRA dynamic-memory findings on the unit: "
          f"{sum(1 for finding in misra.findings if finding.rule == 'D4.12'):.0f}")
    print("\nIn Brook Auto, the buffers become stream parameters and the "
          "runtime owns\nallocation and transfer — the findings above are "
          "exactly what disappears.")


if __name__ == "__main__":
    main()
