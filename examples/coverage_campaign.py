#!/usr/bin/env python3
"""The Figure 5 experiment: structural coverage of YOLO's C modules.

Runs the real-scenario test vectors over every YOLO MiniC module,
prints the per-file statement/branch/MC-DC table (the reproduction of
Figure 5), and then demonstrates the paper's remediation: adding
coverage-directed test cases drives a badly covered file to 100%.

Usage::

    python examples/coverage_campaign.py
"""

from repro.coverage import CoverageRunner, TestVector
from repro.dnn.minic_yolo import YOLO_FILES, run_yolo_coverage, \
    scenario_suite
from repro.iso26262 import tooling_observations


def main() -> None:
    print("Figure 5 — coverage of YOLO modules under real-scenario "
          "tests")
    print("(uncalled functions excluded, as in the paper)\n")
    campaign = run_yolo_coverage()
    print(campaign.render())
    print()
    print(f"paper reports averages 83 / 75 / 61 and minima 19 / 37 / 10; "
          f"measured averages "
          f"{campaign.average('statement'):.0f} / "
          f"{campaign.average('branch'):.0f} / "
          f"{campaign.average('mcdc'):.0f} and minima "
          f"{campaign.minimum('statement'):.0f} / "
          f"{campaign.minimum('branch'):.0f} / "
          f"{campaign.minimum('mcdc'):.0f}")
    print()
    observation = tooling_observations(
        coverage_average=campaign.average("statement"))[0]
    print(observation.render())

    print("\n--- remediation: coverage-directed testing ---")
    source = YOLO_FILES["gemm.c"]
    runner = CoverageRunner(source, "gemm.c")
    runner.run_suite(scenario_suite("gemm.c"))
    before = runner.coverage(exclude_uncalled=True)
    print(f"gemm.c with real-scenario tests only: "
          f"stmt {before.statement_percent:.1f}%  "
          f"branch {before.branch_percent:.1f}%  "
          f"mcdc {before.mcdc_percent:.1f}%")

    # Directed vectors: exercise every transpose variant and both beta
    # paths, with shapes that hit the unrolled and tail loops.
    m, n, k = 5, 6, 7
    a = [0.5 * i for i in range(m * k)]
    b = [0.25 * i for i in range(k * n)]
    for ta in (0, 1):
        for tb in (0, 1):
            for beta in (0.0, 1.0):
                runner.run_vector(TestVector(
                    "gemm_cpu",
                    (ta, tb, m, n, k, 1.0, list(a), k if not ta else m,
                     list(b), n if not tb else k, beta,
                     [0.0] * (m * n), n),
                    name=f"directed ta={ta} tb={tb} beta={beta}"))
    runner.run_vector(TestVector("gemm_flops", (m, n, k, 0)))
    runner.run_vector(TestVector("gemm_flops", (-1, 1, 1, 1)))
    after = runner.coverage(exclude_uncalled=True)
    print(f"gemm.c plus coverage-directed tests:  "
          f"stmt {after.statement_percent:.1f}%  "
          f"branch {after.branch_percent:.1f}%  "
          f"mcdc {after.mcdc_percent:.1f}%")
    if runner.failures:
        raise SystemExit(
            f"directed vectors failed: {[f.error for f in runner.failures]}")


if __name__ == "__main__":
    main()
