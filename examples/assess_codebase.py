#!/usr/bin/env python3
"""Assess an Apollo-scale codebase: generate, write to disk, analyze.

This is the paper's main experiment end to end: materialize the
synthetic Apollo-like source tree, read it back like any other codebase,
run the full ISO 26262-6 assessment, and print Figure 3, Tables 1-3 and
the observations.

Usage::

    python examples/assess_codebase.py [--scale 0.1] [--out report.json]

At ``--scale 1.0`` the corpus exceeds 220k LOC and the run takes about a
minute; the default 0.1 finishes in seconds while preserving every
qualitative result except the component-size observation.
"""

import argparse
import json
import tempfile

from repro import apollo_spec, assess_sources, generate_corpus
from repro.corpus import read_tree, write_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale (1.0 = full 220k+ LOC)")
    parser.add_argument("--out", help="also write the report as JSON")
    args = parser.parse_args()

    print(f"generating Apollo-like corpus at scale {args.scale} ...")
    corpus = generate_corpus(apollo_spec(scale=args.scale))
    print(f"  {len(corpus.files)} files, {corpus.total_lines} lines")

    with tempfile.TemporaryDirectory(prefix="apollo_like_") as root:
        write_corpus(corpus, root)
        print(f"  materialized under {root}")
        sources = read_tree(root)

        print("running the ISO 26262-6 assessment ...")
        result = assess_sources(sources)

    print()
    print(result.render_summary())

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"\nJSON report written to {args.out}")


if __name__ == "__main__":
    main()
