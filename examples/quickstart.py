#!/usr/bin/env python3
"""Quickstart: assess a few C++/CUDA files against ISO 26262-6.

Runs the full assessment pipeline on a handful of in-memory sources and
prints the three requirement tables with verdicts, plus the derived
observations.

Usage::

    python examples/quickstart.py
"""

from repro import assess_sources

SOURCES = {
    # A perception-style file with typical industrial-AD constructs:
    # a mutable global, a complex function, casts, dynamic allocation.
    "perception/tracker.cc": """
#include <vector>
#include "perception/types.h"

namespace apollo {
namespace perception {

int g_track_count = 0;

float UpdateTrack(float* positions, int n, float gain) {
  float score = 0.0f;
  int matched;
  float* scratch = new float[n];
  for (int i = 0; i < n; i++) {
    if (positions[i] > 0.0f && i % 2 == 0) {
      score += positions[i] * gain;
    } else if (positions[i] < -1.0f || gain > 2.0f) {
      score -= 0.5f;
    }
  }
  int rounded = (int)score;
  if (rounded > 100) {
    delete[] scratch;
    return 100.0f;
  }
  delete[] scratch;
  return score;
}

}  // namespace perception
}  // namespace apollo
""",
    # The GPU side: a darknet-style kernel plus its host wrapper, the
    # idiom the paper's Figure 4 highlights.
    "perception/kernels.cu": """
__global__ void scale_bias_kernel(float *output, float *biases, int n,
                                  int size) {
  int offset = blockIdx.x * blockDim.x + threadIdx.x;
  int filter = blockIdx.y;
  int batch = blockIdx.z;
  if (offset < size) {
    output[(batch * n + filter) * size + offset] *= biases[filter];
  }
}

void scale_bias_gpu(float *output, float *biases, int batch, int n,
                    int size) {
  dim3 grid((size - 1) / 512 + 1, n, batch);
  dim3 block(512);
  float *d_output;
  cudaMalloc((void**)&d_output, batch * n * size * sizeof(float));
  scale_bias_kernel<<<grid, block>>>(d_output, biases, n, size);
  cudaFree(d_output);
}
""",
    # A control-style file that is closer to compliant.
    "control/pid.cc": """
namespace apollo {
namespace control {

float Clamp(float value, float low, float high) {
  float result = value;
  if (value < low) {
    result = low;
  }
  if (value > high) {
    result = high;
  }
  return result;
}

}  // namespace control
}  // namespace apollo
""",
}


def main() -> None:
    result = assess_sources(SOURCES)
    print(result.render_summary())


if __name__ == "__main__":
    main()
