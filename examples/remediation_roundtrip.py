#!/usr/bin/env python3
"""Remediation round trip: apply the paper's cheap fixes, re-assess, diff.

The paper splits its findings into gaps closable "with limited software
engineering effort" and gaps that "require research innovations".  This
example demonstrates that split end to end:

1. assess the baseline Apollo-like corpus;
2. generate the *remediated* corpus — same architecture, but with the
   engineering-effort fixes applied (low complexity, defensive checks,
   single exits, initialized variables, no gotos, static allocation);
3. re-assess and diff: the engineering-effort verdicts flip to
   compliant, while the GPU/pointer/language-subset gaps remain — those
   are the research-level items (Brook Auto et al.).

Usage::

    python examples/remediation_roundtrip.py [--scale 0.08]
"""

import argparse

from repro.core import assess_corpus, diff_assessments, gap_reduction, \
    plan_remediation, render_plan
from repro.corpus import apollo_remediated_spec, apollo_spec, \
    generate_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    args = parser.parse_args()

    print(f"assessing baseline corpus (scale {args.scale}) ...")
    before = assess_corpus(generate_corpus(apollo_spec(scale=args.scale)))
    print(f"assessing remediated corpus ...")
    after = assess_corpus(
        generate_corpus(apollo_remediated_spec(scale=args.scale)))

    diff = diff_assessments(before, after)
    print()
    print(diff.render())

    reduction = gap_reduction(before, after)
    print(f"\nweighted certification gap: {reduction['before']} -> "
          f"{reduction['after']} "
          f"({100 * (1 - reduction['after'] / reduction['before']):.0f}% "
          f"reduction from engineering effort alone)")

    print("\nwhat remains is the research agenda:")
    print(render_plan(plan_remediation(after.tables)))


if __name__ == "__main__":
    main()
